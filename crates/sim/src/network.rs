//! Full-network energy simulation: the contention engine combined with the
//! paper's radio activation policy and per-node energy ledgers.
//!
//! For every node and superframe the simulated lifecycle is the one in the
//! paper's Figure 5:
//!
//! 1. wake the chip ~1 ms before the beacon (shutdown → idle), turn the
//!    receiver on (`T_ia`) and receive the beacon;
//! 2. return to shutdown until the node's packet is ready, then wake again
//!    and run slotted CSMA/CA — idle between CCAs, receiver on for each
//!    194 µs turn-on plus the 128 µs assessment;
//! 3. transmit the packet at the node's power level;
//! 4. turn around to RX and listen for the acknowledgement (ACK duration
//!    when acknowledged, the full `t_ack⁺ − t_ack⁻` window otherwise);
//! 5. observe the interframe spacing and shut down.
//!
//! Energy is derived from the contention trace (backoff wall-time, CCA
//! counts, attempts, outcomes) — every state residency is known exactly, so
//! the ledger is bit-deterministic given the seed.

use wsn_channel::received_power;
use wsn_phy::ber::BerModel;
use wsn_phy::frame::{ack_duration, beacon_duration, PacketLayout};
use wsn_radio::ledger::{EnergyLedger, PhaseTag};
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_units::{DBm, Db, Power, Probability, Seconds};

use std::collections::HashMap;
use std::sync::Arc;

use crate::cfp::{DownlinkOutcome, DownlinkRecord, GtsRecord, DATA_REQUEST_AIR_BYTES};
use crate::contention::{
    run_channel_sim_into_ws, with_workspace, AttemptOutcome, AttemptRecord, ChannelSimConfig,
    SimTrace, TransactionRecord,
};
use crate::faults::{FaultKind, FaultRecord};
use crate::rng::Xoshiro256StarStar;
use crate::sink::{StatsSink, TeeSink, TraceCollector, TraceSink};
use crate::stats::{Accumulator, Counter};

/// Per-node transmit power assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum TxPowerPolicy {
    /// Every node transmits at the same level.
    Fixed(TxPowerLevel),
    /// Channel inversion: each node picks the cheapest level whose received
    /// power at the coordinator is at least `target_rx`; nodes that cannot
    /// reach it use 0 dBm.
    ChannelInversion {
        /// Desired received power at the coordinator.
        target_rx: DBm,
    },
    /// Explicit per-node levels (e.g. computed by the analytical link
    /// adaptation). The levels live behind an [`Arc`] so cloning the
    /// policy — which every per-replication config view does — shares the
    /// allocation instead of copying it.
    PerNode(Arc<[TxPowerLevel]>),
}

impl TxPowerPolicy {
    /// Resolves the policy into per-node levels.
    ///
    /// # Panics
    ///
    /// Panics if a `PerNode` assignment has the wrong length.
    pub fn resolve(&self, path_losses: &[Db]) -> Vec<TxPowerLevel> {
        match self {
            TxPowerPolicy::Fixed(level) => vec![*level; path_losses.len()],
            TxPowerPolicy::ChannelInversion { target_rx } => path_losses
                .iter()
                .map(|a| {
                    let required = DBm::new(target_rx.dbm() + a.db());
                    TxPowerLevel::cheapest_reaching(required).unwrap_or(TxPowerLevel::strongest())
                })
                .collect(),
            TxPowerPolicy::PerNode(levels) => {
                assert_eq!(
                    levels.len(),
                    path_losses.len(),
                    "per-node level count must match node count"
                );
                levels.to_vec()
            }
        }
    }
}

/// Configuration of the network energy simulation.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Channel/contention parameters (node count, packet, load, CSMA…).
    pub channel: ChannelSimConfig,
    /// Radio energy model.
    pub radio: RadioModel,
    /// Per-node path losses to the coordinator (length = node count).
    /// Shared behind an [`Arc`]: per-replication and per-job config views
    /// clone the `NetworkConfig` in O(1) — only the seed differs per job.
    pub path_losses: Arc<[Db]>,
    /// Transmit power assignment.
    pub tx_policy: TxPowerPolicy,
    /// Coordinator transmit power (beacon and acknowledgements).
    pub coordinator_tx: DBm,
    /// How early the chip wakes before the beacon (the paper uses 1 ms to
    /// cover the ~970 µs shutdown→idle transition).
    pub wakeup_margin: Seconds,
    /// Optional precomputed per-node corruption probabilities (length =
    /// node count). `None` (the default everywhere) makes the simulator
    /// derive them from the BER model on entry; `Some` skips that
    /// derivation — the policy loop caches the full-population BER math
    /// once per drift value and remaps it per round. Values must equal
    /// what [`corruption_probability`] computes bit-for-bit, or traces
    /// diverge from the uncached path.
    pub corrupt_probs: Option<Arc<[f64]>>,
}

impl NetworkConfig {
    /// Validates structural consistency.
    ///
    /// # Panics
    ///
    /// Panics if the path-loss vector (or a provided corruption-probability
    /// vector) length differs from the node count.
    fn validate(&self) {
        assert_eq!(
            self.path_losses.len(),
            self.channel.nodes,
            "one path loss per node required"
        );
        if let Some(probs) = &self.corrupt_probs {
            assert_eq!(
                probs.len(),
                self.channel.nodes,
                "one corruption probability per node required"
            );
        }
    }
}

/// Packet-or-ACK corruption probability of one uplink transaction: the
/// packet at the node's `level` over `loss`, the acknowledgement back at
/// `coordinator_tx` over the same loss, either direction failing costing
/// the acknowledgement.
///
/// The single source of truth for this math: the simulator's per-run
/// derivation and the policy loop's cached full-population table both call
/// it, which is what makes the cached path bit-identical to the uncached
/// one.
pub(crate) fn corruption_probability<B: BerModel>(
    ber: &B,
    packet: PacketLayout,
    coordinator_tx: DBm,
    loss: Db,
    level: TxPowerLevel,
) -> f64 {
    // The ACK's preamble/SFD are sent before the receiver's correlator
    // locks; 11 - 4 = 7 exposed octets.
    let ack_exposed_bits = 8.0 * (11.0 - 4.0);
    let p_rx = received_power(level.output_power(), loss);
    let pr_packet = ber.packet_error_probability(p_rx, packet).value();
    let p_rx_ack = received_power(coordinator_tx, loss);
    let pr_bit_ack = ber.bit_error_probability(p_rx_ack).value();
    let pr_ack = 1.0 - (1.0 - pr_bit_ack).powf(ack_exposed_bits);
    1.0 - (1.0 - pr_packet) * (1.0 - pr_ack)
}

/// Aggregated results of a network simulation, computed online — the
/// trace-free output of [`NetworkSimulator::run_streaming`] and the
/// finalized form of a [`NetworkAccumulator`].
#[derive(Debug, Clone)]
pub struct NetworkSummary {
    /// Mean average power per node over the recorded window.
    pub mean_node_power: Power,
    /// Per-node average powers (channel-major when channels were merged).
    pub node_powers: Vec<Power>,
    /// Population energy ledger (all nodes merged) — Figure 9 material.
    pub ledger: EnergyLedger,
    /// Fraction of transactions that failed (`Pr_fail`).
    pub failure_ratio: Probability,
    /// Number of transactions observed (the trials behind
    /// [`failure_ratio`](Self::failure_ratio)) — the sample size
    /// allocation policies weight their per-channel observations by.
    pub transactions: u64,
    /// Mean delivery delay.
    pub mean_delay: Seconds,
    /// Mean transmission attempts per transaction.
    pub mean_attempts: f64,
    /// Energy per delivered payload bit.
    pub energy_per_bit_nj: f64,
    /// Number of independent replications merged into this summary.
    pub replications: u32,
    /// Standard error of [`mean_node_power`](Self::mean_node_power):
    /// across replication means when `replications ≥ 2`, otherwise across
    /// the node population of the single run.
    pub power_standard_error: Power,
    /// Standard error of [`failure_ratio`](Self::failure_ratio): across
    /// replications when available, otherwise the binomial error over
    /// transactions.
    pub failure_standard_error: f64,
    /// Standard error of [`mean_delay`](Self::mean_delay): across
    /// replications when available, otherwise across delivered
    /// transactions.
    pub delay_standard_error: Seconds,
    /// Mean per-node power spent on CAP traffic (contention, uplink
    /// transmission, acknowledgement wait, interframe spacing).
    pub cap_power: Power,
    /// Mean per-node power spent on contention-free traffic (GTS
    /// transmissions plus downlink polling).
    pub cfp_power: Power,
    /// Standard error of [`cap_power`](Self::cap_power): across
    /// replication means when `replications ≥ 2`, otherwise across the
    /// node population.
    pub cap_power_standard_error: Power,
    /// Standard error of [`cfp_power`](Self::cfp_power), like
    /// [`cap_power_standard_error`](Self::cap_power_standard_error).
    pub cfp_power_standard_error: Power,
    /// GTS transmissions observed (CFP transactions).
    pub gts_transactions: u64,
    /// Fraction of GTS transmissions that failed (channel noise only —
    /// GTS never collides).
    pub gts_failure_ratio: Probability,
    /// GTS requests denied at compile time, summed over merged runs.
    pub gts_denied: u64,
    /// Downlink polls that ran a data request (deferred polls excluded).
    pub downlink_polls: u64,
    /// Fraction of those polls that failed to deliver the frame.
    pub downlink_failure_ratio: Probability,
    /// Downlink polls deferred because the node was busy.
    pub downlink_deferred: u64,
    /// Node deaths injected by the fault plan (0 without faults).
    pub deaths: u64,
    /// Orphan-scan windows: beacons an alive node woke for and missed
    /// (coordinator outages).
    pub orphan_scans: u64,
    /// Re-association exchanges attempted by churned nodes.
    pub join_attempts: u64,
    /// Fraction of those exchanges that failed (response lost).
    pub join_failure_ratio: Probability,
    /// Mean death → successful re-association latency over rejoins.
    pub mean_reassociation_delay: Seconds,
    /// Nodes that exhausted their join-retry budget and stayed dormant.
    pub dormant_nodes: u64,
    /// Total energy divided by delivered uplink packets, in µJ — the
    /// graceful-degradation headline under churn (∞ when nothing was
    /// delivered).
    pub energy_per_delivered_packet_uj: f64,
}

/// Mergeable sufficient statistics of one or more network simulation runs.
///
/// This is the network-level analogue of
/// [`ContentionAccumulator`](crate::stats::ContentionAccumulator): every
/// field merges exactly ([`Accumulator::merge`] / [`Counter::merge`] /
/// [`EnergyLedger::merge`]), so per-channel and per-replication shards
/// reduced on worker threads and combined in a fixed order are
/// bit-identical to a serial fold. [`NetworkSimulator::run_accumulate`]
/// produces one per run; the parallel runner and the scenario layer merge
/// them.
///
/// Replication-level confidence intervals come from the `rep_*`
/// accumulators, which receive **one sample per sealed replication**
/// ([`seal_replication`](Self::seal_replication)): seal each replication's
/// accumulator (possibly after merging that replication's channels) before
/// merging it into the total.
#[derive(Debug, Clone, Default)]
pub struct NetworkAccumulator {
    /// Per-node average powers in µW (one sample per node).
    pub node_power_uw: Accumulator,
    /// Per-node average powers in accrual order (concatenated on merge).
    pub node_powers: Vec<Power>,
    /// Population energy ledger (all nodes merged).
    pub ledger: EnergyLedger,
    /// Failed-transaction counter (`Pr_fail`).
    pub failures: Counter,
    /// Transmission attempts per transaction.
    pub attempts: Accumulator,
    /// Delivery delay in seconds, over delivered transactions.
    pub delay_secs: Accumulator,
    /// Delivered payload bits (energy-per-bit denominator).
    pub delivered_payload_bits: f64,
    /// Arrivals skipped because the node was still busy.
    pub overruns: u64,
    /// Replication means of the per-node power (µW); one sample per
    /// sealed replication.
    pub rep_power_uw: Accumulator,
    /// Replication failure ratios; one sample per sealed replication.
    pub rep_failure: Accumulator,
    /// Replication mean delays (s); one sample per sealed replication.
    pub rep_delay_secs: Accumulator,
    /// Per-node CAP power in µW (contention + transmit + ACK + IFS).
    pub cap_uw: Accumulator,
    /// Per-node CFP power in µW (GTS + downlink phases).
    pub cfp_uw: Accumulator,
    /// Replication means of the per-node CAP power; one per sealed
    /// replication.
    pub rep_cap_uw: Accumulator,
    /// Replication means of the per-node CFP power; one per sealed
    /// replication.
    pub rep_cfp_uw: Accumulator,
    /// Failed GTS transmissions over GTS transmissions.
    pub gts_failures: Counter,
    /// GTS requests denied at compile time, summed over merged runs.
    pub gts_denied: u64,
    /// Undelivered downlink polls over non-deferred polls.
    pub downlink_failures: Counter,
    /// Downlink polls deferred because the node was busy.
    pub downlink_deferred: u64,
    /// Node deaths injected by the fault plan.
    pub deaths: u64,
    /// Orphan-scan windows (beacons alive nodes woke for and missed).
    pub orphan_scans: u64,
    /// Failed re-association exchanges over all exchanges (hit = the
    /// response was lost).
    pub join_failures: Counter,
    /// Death → successful re-association latency in seconds.
    pub reassoc_delay_secs: Accumulator,
    /// Nodes that exhausted their join-retry budget and went dormant.
    pub dormant_nodes: u64,
}

impl NetworkAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        NetworkAccumulator::default()
    }

    /// Merges another accumulator into this one. Exact, and
    /// bit-deterministic when performed in a fixed order.
    pub fn merge(&mut self, other: &NetworkAccumulator) {
        self.node_power_uw.merge(&other.node_power_uw);
        self.node_powers.extend_from_slice(&other.node_powers);
        self.ledger.merge(&other.ledger);
        self.failures.merge(&other.failures);
        self.attempts.merge(&other.attempts);
        self.delay_secs.merge(&other.delay_secs);
        self.delivered_payload_bits += other.delivered_payload_bits;
        self.overruns += other.overruns;
        self.rep_power_uw.merge(&other.rep_power_uw);
        self.rep_failure.merge(&other.rep_failure);
        self.rep_delay_secs.merge(&other.rep_delay_secs);
        self.cap_uw.merge(&other.cap_uw);
        self.cfp_uw.merge(&other.cfp_uw);
        self.rep_cap_uw.merge(&other.rep_cap_uw);
        self.rep_cfp_uw.merge(&other.rep_cfp_uw);
        self.gts_failures.merge(&other.gts_failures);
        self.gts_denied += other.gts_denied;
        self.downlink_failures.merge(&other.downlink_failures);
        self.downlink_deferred += other.downlink_deferred;
        self.deaths += other.deaths;
        self.orphan_scans += other.orphan_scans;
        self.join_failures.merge(&other.join_failures);
        self.reassoc_delay_secs.merge(&other.reassoc_delay_secs);
        self.dormant_nodes += other.dormant_nodes;
    }

    /// Records the current aggregate scalars as one replication sample.
    ///
    /// Call exactly once per independent replication, after all of that
    /// replication's shards (e.g. its channels) have been merged and
    /// before merging into the cross-replication total.
    pub fn seal_replication(&mut self) {
        self.rep_power_uw.push(self.node_power_uw.mean());
        self.rep_failure.push(self.failures.ratio().value());
        self.rep_delay_secs.push(self.delay_secs.mean());
        self.rep_cap_uw.push(self.cap_uw.mean());
        self.rep_cfp_uw.push(self.cfp_uw.mean());
    }

    /// Number of sealed replications.
    pub fn replications(&self) -> u32 {
        self.rep_power_uw.count() as u32
    }

    /// Finalizes into a [`NetworkSummary`].
    ///
    /// Standard errors are replication-based when at least two
    /// replications were sealed; with fewer they fall back to the
    /// within-run sample errors (node population for power, binomial over
    /// transactions for failures, delivered transactions for delay).
    pub fn summary(&self) -> NetworkSummary {
        let replications = self.replications();
        let (power_se_uw, failure_se, delay_se_secs, cap_se_uw, cfp_se_uw) = if replications >= 2 {
            (
                self.rep_power_uw.standard_error(),
                self.rep_failure.standard_error(),
                self.rep_delay_secs.standard_error(),
                self.rep_cap_uw.standard_error(),
                self.rep_cfp_uw.standard_error(),
            )
        } else {
            (
                self.node_power_uw.standard_error(),
                self.failures.standard_error(),
                self.delay_secs.standard_error(),
                self.cap_uw.standard_error(),
                self.cfp_uw.standard_error(),
            )
        };
        let energy_per_bit_nj = if self.delivered_payload_bits > 0.0 {
            self.ledger.total_energy().nanojoules() / self.delivered_payload_bits
        } else {
            f64::INFINITY
        };
        let delivered = self.failures.trials() - self.failures.hits();
        let energy_per_delivered_packet_uj = if delivered > 0 {
            self.ledger.total_energy().nanojoules() / 1e3 / delivered as f64
        } else {
            f64::INFINITY
        };
        NetworkSummary {
            mean_node_power: Power::from_microwatts(self.node_power_uw.mean()),
            node_powers: self.node_powers.clone(),
            ledger: self.ledger.clone(),
            failure_ratio: self.failures.ratio(),
            transactions: self.failures.trials(),
            mean_delay: Seconds::from_secs(self.delay_secs.mean()),
            mean_attempts: self.attempts.mean(),
            energy_per_bit_nj,
            replications,
            power_standard_error: Power::from_microwatts(power_se_uw),
            failure_standard_error: failure_se,
            delay_standard_error: Seconds::from_secs(delay_se_secs),
            cap_power: Power::from_microwatts(self.cap_uw.mean()),
            cfp_power: Power::from_microwatts(self.cfp_uw.mean()),
            cap_power_standard_error: Power::from_microwatts(cap_se_uw),
            cfp_power_standard_error: Power::from_microwatts(cfp_se_uw),
            gts_transactions: self.gts_failures.trials(),
            gts_failure_ratio: self.gts_failures.ratio(),
            gts_denied: self.gts_denied,
            downlink_polls: self.downlink_failures.trials(),
            downlink_failure_ratio: self.downlink_failures.ratio(),
            downlink_deferred: self.downlink_deferred,
            deaths: self.deaths,
            orphan_scans: self.orphan_scans,
            join_attempts: self.join_failures.trials(),
            join_failure_ratio: self.join_failures.ratio(),
            mean_reassociation_delay: Seconds::from_secs(self.reassoc_delay_secs.mean()),
            dormant_nodes: self.dormant_nodes,
            energy_per_delivered_packet_uj,
        }
    }
}

/// Aggregated results of a network simulation plus the raw trace.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Mean average power per node over the recorded window.
    pub mean_node_power: Power,
    /// Per-node average powers.
    pub node_powers: Vec<Power>,
    /// Population energy ledger (all nodes merged) — Figure 9 material.
    pub ledger: EnergyLedger,
    /// Fraction of transactions that failed (`Pr_fail`).
    pub failure_ratio: Probability,
    /// Mean delivery delay.
    pub mean_delay: Seconds,
    /// Mean transmission attempts per transaction.
    pub mean_attempts: f64,
    /// Energy per delivered payload bit.
    pub energy_per_bit_nj: f64,
    /// The raw contention trace (for further analysis).
    pub trace: SimTrace,
}

/// The network energy simulator.
#[derive(Debug, Clone)]
pub struct NetworkSimulator {
    config: NetworkConfig,
}

impl NetworkSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally inconsistent.
    pub fn new(config: NetworkConfig) -> Self {
        config.validate();
        NetworkSimulator { config }
    }

    /// Pre-computes per-node packet-or-ACK corruption probabilities into a
    /// reusable buffer (the workspace's scratch on the hot path).
    fn corruption_probabilities_into<B: BerModel>(
        &self,
        ber: &B,
        levels: &[TxPowerLevel],
        out: &mut Vec<f64>,
    ) {
        let cfg = &self.config;
        let packet = cfg.channel.packet;
        out.clear();
        out.extend(
            cfg.path_losses
                .iter()
                .zip(levels)
                .map(|(a, lvl)| corruption_probability(ber, packet, cfg.coordinator_tx, *a, *lvl)),
        );
    }

    /// Drives the contention engine into `sink` with the BER-driven
    /// corruption oracle attached, on the calling thread's reusable
    /// [`SimWorkspace`] — queue, node array and corruption buffer all come
    /// from (and return to) the workspace, so repeated drives allocate
    /// nothing.
    fn drive<B: BerModel, S: TraceSink>(
        &self,
        ber: &B,
        levels: &[TxPowerLevel],
        sink: &mut S,
    ) -> u64 {
        let cfg = &self.config;
        let timings = cfg.channel.timings();
        let mut noise_rng =
            Xoshiro256StarStar::seed_from_u64(cfg.channel.seed ^ 0x5EED_CAFE_F00D_u64);
        with_workspace(|ws| {
            // The oracle closure borrows the probability buffer while the
            // engine borrows the rest of the workspace: take it out for
            // the run, hand it back after.
            let mut probs = std::mem::take(&mut ws.corrupt_probs);
            match &cfg.corrupt_probs {
                // Precomputed (the policy loop's per-drift cache): skip the
                // per-node BER math entirely.
                Some(cached) => {
                    probs.clear();
                    probs.extend_from_slice(cached);
                }
                None => self.corruption_probabilities_into(ber, levels, &mut probs),
            }
            let events = run_channel_sim_into_ws(
                &cfg.channel,
                &timings,
                |node| noise_rng.bernoulli(probs[node as usize]),
                sink,
                ws,
            );
            ws.corrupt_probs = probs;
            events
        })
    }

    /// Runs the simulation against a BER model, keeping the raw trace.
    pub fn run<B: BerModel>(&self, ber: &B) -> NetworkReport {
        let levels = self.config.tx_policy.resolve(&self.config.path_losses);
        let timings = self.config.channel.timings();
        let mut tee = TeeSink(
            EnergyAccountant::new(&self.config, &levels),
            TraceCollector::new(timings.superframe_slots),
        );
        self.drive(ber, &levels, &mut tee);
        let TeeSink(accountant, collector) = tee;
        let mut acc = accountant.finish();
        acc.seal_replication();
        let summary = acc.summary();
        NetworkReport {
            mean_node_power: summary.mean_node_power,
            node_powers: summary.node_powers,
            ledger: summary.ledger,
            failure_ratio: summary.failure_ratio,
            mean_delay: summary.mean_delay,
            mean_attempts: summary.mean_attempts,
            energy_per_bit_nj: summary.energy_per_bit_nj,
            trace: collector.into_trace(),
        }
    }

    /// Runs the simulation fully streaming into a mergeable
    /// [`NetworkAccumulator`]: every attempt/transaction is folded into
    /// the energy ledgers and statistics as it happens, and no trace `Vec`
    /// is ever allocated.
    ///
    /// The returned accumulator is **unsealed** — no replication sample
    /// has been recorded — so callers aggregating shards (channels of one
    /// replication) can merge first and
    /// [`seal_replication`](NetworkAccumulator::seal_replication) once.
    pub fn run_accumulate<B: BerModel>(&self, ber: &B) -> NetworkAccumulator {
        self.run_accumulate_counted(ber).0
    }

    /// [`run_accumulate`](Self::run_accumulate) also returning the number
    /// of engine events processed — the scale benchmark's throughput
    /// denominator, counted in the same pass so throughput and energy come
    /// from one run.
    pub fn run_accumulate_counted<B: BerModel>(&self, ber: &B) -> (NetworkAccumulator, u64) {
        let levels = self.config.tx_policy.resolve(&self.config.path_losses);
        let mut accountant = EnergyAccountant::new(&self.config, &levels);
        let events = self.drive(ber, &levels, &mut accountant);
        (accountant.finish(), events)
    }

    /// Runs one streaming replication and finalizes it. Preferred for
    /// sweeps that only need the aggregates of a single run; use
    /// [`run_accumulate`](Self::run_accumulate) plus
    /// [`NetworkAccumulator::merge`] for multi-run reductions.
    pub fn run_streaming<B: BerModel>(&self, ber: &B) -> NetworkSummary {
        let mut acc = self.run_accumulate(ber);
        acc.seal_replication();
        acc.summary()
    }

    /// [`run_accumulate`](Self::run_accumulate) with the per-node energy
    /// accounting sharded across `shards` worker threads —
    /// **bit-identical to the unsharded run for every shard count**.
    ///
    /// The contention physics cannot be partitioned (every CCA senses
    /// every other node's transmission), so the event engine runs
    /// unchanged on the calling thread. What *is* exactly partitionable
    /// is the per-node energy accounting: each worker owns one contiguous
    /// node-index range — a spatial cell, since deployments lay node
    /// indices out by geometry (rings, disc radius, clusters) — and
    /// accrues that range's [`EnergyLedger`]s from the record stream the
    /// engine relays in order. Per-node accrual is a fixed f64 sequence
    /// per node regardless of which thread runs it, and the final fold
    /// ([`finish_ledgers`]) walks the concatenated ledgers in node order
    /// on one thread, so the result is bit-identical by construction —
    /// the same contract the thread-count determinism suite pins for the
    /// runner.
    ///
    /// `shards` is clamped to `[1, nodes]`; `shards <= 1` falls back to
    /// the serial path. At 10⁵⁺ nodes the accounting (≈60 % of the wall
    /// clock on dense channels) scales with the worker count while the
    /// engine stays hot on one core.
    pub fn run_accumulate_sharded<B: BerModel>(
        &self,
        ber: &B,
        shards: usize,
    ) -> NetworkAccumulator {
        let nodes = self.config.channel.nodes;
        let shards = shards.clamp(1, nodes.max(1));
        if shards <= 1 {
            return self.run_accumulate(ber);
        }
        let levels = self.config.tx_policy.resolve(&self.config.path_losses);
        let consts = AccountingConsts::new(&self.config);
        let radio = &self.config.radio;
        // Balanced contiguous ranges: shard `s` owns `bounds[s]..bounds[s+1]`.
        let bounds: Vec<usize> = (0..=shards).map(|s| s * nodes / shards).collect();

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<ShardMsg>>(4);
            senders.push(tx);
            receivers.push(rx);
        }

        let (ledgers, stats, missed_beacons, join_failures) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for (s, rx) in receivers.into_iter().enumerate() {
                let lo = bounds[s];
                let hi = bounds[s + 1];
                let levels = &levels[lo..hi];
                let consts = &consts;
                handles.push(scope.spawn(move || {
                    let mut ledgers = vec![EnergyLedger::new(); hi - lo];
                    while let Ok(batch) = rx.recv() {
                        for msg in &batch {
                            let i = msg.node() as usize - lo;
                            let ledger = &mut ledgers[i];
                            match msg {
                                ShardMsg::Attempt(a) => {
                                    ledger_on_attempt(ledger, radio, levels[i], consts, a);
                                }
                                ShardMsg::Transaction(_) => {
                                    ledger_on_transaction(ledger, radio);
                                }
                                ShardMsg::Gts(r) => {
                                    ledger_on_gts(ledger, radio, levels[i], consts, r);
                                }
                                ShardMsg::Downlink(r) => {
                                    ledger_on_downlink(ledger, radio, levels[i], consts, r);
                                }
                                ShardMsg::Fault(r) => {
                                    ledger_on_fault(ledger, radio, levels[i], consts, r);
                                }
                            }
                        }
                    }
                    ledgers
                }));
            }

            // The engine runs unchanged on the calling thread; the sink
            // keeps the cross-node statistics here and relays the
            // ledger-relevant records to their owning shards in batches.
            let mut sink = ShardingSink::new(nodes, &bounds, senders);
            self.drive(ber, &levels, &mut sink);
            let (stats, missed_beacons, join_failures) = sink.finish();

            // Fixed shard order: concatenating the joined ranges rebuilds
            // the node-ordered ledger list the serial path produces.
            let mut ledgers = Vec::with_capacity(nodes);
            for handle in handles {
                ledgers.extend(handle.join().expect("shard worker panicked"));
            }
            (ledgers, stats, missed_beacons, join_failures)
        });

        finish_ledgers(&self.config, ledgers, &missed_beacons, stats, join_failures)
    }
}

/// One ledger-relevant record relayed from the engine thread to the shard
/// worker that owns its node.
#[derive(Debug, Clone, Copy)]
enum ShardMsg {
    Attempt(AttemptRecord),
    Transaction(u32),
    Gts(GtsRecord),
    Downlink(DownlinkRecord),
    Fault(FaultRecord),
}

impl ShardMsg {
    fn node(&self) -> u32 {
        match self {
            ShardMsg::Attempt(a) => a.node,
            ShardMsg::Transaction(node) => *node,
            ShardMsg::Gts(r) => r.node,
            ShardMsg::Downlink(r) => r.node,
            ShardMsg::Fault(r) => r.node,
        }
    }
}

/// Batch size of the engine→shard relay. Large enough to amortize the
/// channel synchronization, small enough to keep workers busy during the
/// run rather than after it.
const SHARD_BATCH: usize = 1024;

/// The engine-thread half of [`NetworkSimulator::run_accumulate_sharded`]:
/// folds the cross-node statistics exactly like the serial
/// [`EnergyAccountant`] and relays per-node ledger work to the shard
/// workers, batched and in record order (each node's accrual sequence is
/// preserved because a node lives in exactly one shard).
struct ShardingSink {
    stats: StatsSink,
    missed_beacons: Vec<u32>,
    join_failures: Counter,
    /// node index → owning shard, precomputed from the range bounds.
    shard_of: Vec<u32>,
    senders: Vec<std::sync::mpsc::SyncSender<Vec<ShardMsg>>>,
    batches: Vec<Vec<ShardMsg>>,
}

impl ShardingSink {
    fn new(
        nodes: usize,
        bounds: &[usize],
        senders: Vec<std::sync::mpsc::SyncSender<Vec<ShardMsg>>>,
    ) -> Self {
        let shards = senders.len();
        let mut shard_of = vec![0u32; nodes];
        for s in 0..shards {
            for owner in shard_of.iter_mut().take(bounds[s + 1]).skip(bounds[s]) {
                *owner = s as u32;
            }
        }
        ShardingSink {
            stats: StatsSink::new(),
            missed_beacons: vec![0; nodes],
            join_failures: Counter::default(),
            shard_of,
            senders,
            batches: (0..shards)
                .map(|_| Vec::with_capacity(SHARD_BATCH))
                .collect(),
        }
    }

    fn relay(&mut self, msg: ShardMsg) {
        let s = self.shard_of[msg.node() as usize] as usize;
        self.batches[s].push(msg);
        if self.batches[s].len() == SHARD_BATCH {
            self.flush(s);
        }
    }

    fn flush(&mut self, s: usize) {
        if self.batches[s].is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batches[s], Vec::with_capacity(SHARD_BATCH));
        self.senders[s]
            .send(batch)
            .expect("shard worker hung up before the engine finished");
    }

    /// Flushes the remaining batches, closes the relay (workers drain and
    /// exit) and returns the engine-thread folds.
    fn finish(mut self) -> (StatsSink, Vec<u32>, Counter) {
        for s in 0..self.senders.len() {
            self.flush(s);
        }
        drop(self.senders);
        (self.stats, self.missed_beacons, self.join_failures)
    }
}

impl TraceSink for ShardingSink {
    fn on_attempt(&mut self, a: &AttemptRecord) {
        self.stats.on_attempt(a);
        self.relay(ShardMsg::Attempt(*a));
    }

    fn on_transaction(&mut self, t: &TransactionRecord) {
        self.stats.on_transaction(t);
        self.relay(ShardMsg::Transaction(t.node));
    }

    fn on_overrun(&mut self) {
        self.stats.on_overrun();
    }

    fn on_gts(&mut self, r: &GtsRecord) {
        self.stats.on_gts(r);
        self.relay(ShardMsg::Gts(*r));
    }

    fn on_downlink(&mut self, r: &DownlinkRecord) {
        self.stats.on_downlink(r);
        if r.outcome != DownlinkOutcome::Deferred {
            // Deferred polls carry no ledger cost; skip the relay.
            self.relay(ShardMsg::Downlink(*r));
        }
    }

    fn on_fault(&mut self, r: &FaultRecord) {
        self.stats.on_fault(r);
        match r.kind {
            FaultKind::MissedBeacon { listened } => {
                self.missed_beacons[r.node as usize] += 1;
                if listened {
                    self.relay(ShardMsg::Fault(*r));
                }
            }
            FaultKind::JoinAttempt { success } => {
                self.join_failures.observe(!success);
                self.relay(ShardMsg::Fault(*r));
            }
            // No ledger cost: deaths, rejoin confirmations, dormancy.
            FaultKind::Death | FaultKind::Reassociated { .. } | FaultKind::Dormant => {}
        }
    }
}

/// Per-configuration timing constants hoisted off the per-record accrual
/// path — shared by the serial [`EnergyAccountant`] and the shard workers
/// of [`NetworkSimulator::run_accumulate_sharded`], so cached and sharded
/// accounting run the exact same arithmetic.
#[derive(Debug, Clone, Copy)]
struct AccountingConsts {
    packet_airtime: Seconds,
    slot: Seconds,
    t_ack: Seconds,
    cca_sense: Seconds,
    noack_listen: Seconds,
    ifs: Seconds,
    turn_on: Seconds,
    turnaround: Seconds,
    dl_request_air: Seconds,
    t_beacon: Seconds,
    /// Idle dwell before the beacon: wakeup margin minus the
    /// shutdown→idle transition, floored at zero.
    margin: Seconds,
}

impl AccountingConsts {
    fn new(cfg: &NetworkConfig) -> Self {
        AccountingConsts {
            packet_airtime: cfg.channel.packet.duration(),
            slot: Seconds::from_micros(320.0),
            t_ack: ack_duration(),
            cca_sense: Seconds::from_micros(128.0),
            noack_listen: Seconds::from_micros(864.0 - 192.0),
            ifs: Seconds::from_micros(640.0),
            turn_on: cfg.radio.turn_on_time(),
            turnaround: Seconds::from_micros(192.0),
            dl_request_air: wsn_phy::consts::bytes(DATA_REQUEST_AIR_BYTES),
            t_beacon: beacon_duration(),
            margin: (cfg.wakeup_margin - cfg.radio.wakeup_time()).max(Seconds::ZERO),
        }
    }
}

// Ledger-side accrual, one free function per record kind. These are the
// single source of truth for how a record becomes joules: the serial
// `EnergyAccountant` calls them inline and the spatial-shard workers call
// them on their node ranges, so a sharded run accrues the exact same f64
// sequence per node as the unsharded one (bit-identity by construction).

fn ledger_on_attempt(
    ledger: &mut EnergyLedger,
    radio: &RadioModel,
    level: TxPowerLevel,
    k: &AccountingConsts,
    a: &AttemptRecord,
) {
    // Contention wall time: idle except for the CCA turn-ons.
    let wall = k.slot * a.contention_slots as f64;
    let cca_active = (k.turn_on + k.cca_sense) * a.ccas as f64;
    let idle_time = (wall - cca_active).max(Seconds::ZERO);
    ledger.accrue(radio, RadioState::Idle, PhaseTag::Contention, idle_time);
    for _ in 0..a.ccas {
        ledger.accrue_transition(
            radio,
            RadioState::Idle,
            RadioState::Rx,
            PhaseTag::Contention,
        );
        ledger.accrue_listen(radio, PhaseTag::Contention, k.cca_sense);
    }

    if a.outcome == AttemptOutcome::AccessFailure {
        return;
    }

    // Transmission.
    ledger.accrue_transition(
        radio,
        RadioState::Idle,
        RadioState::Tx(level),
        PhaseTag::Transmit,
    );
    ledger.accrue(
        radio,
        RadioState::Tx(level),
        PhaseTag::Transmit,
        k.packet_airtime,
    );

    // Acknowledgement window.
    ledger.accrue_transition(
        radio,
        RadioState::Tx(level),
        RadioState::Rx,
        PhaseTag::AckWait,
    );
    match a.outcome {
        AttemptOutcome::Delivered => {
            ledger.accrue_listen(radio, PhaseTag::AckWait, k.t_ack);
        }
        AttemptOutcome::Corrupted | AttemptOutcome::Collided => {
            ledger.accrue_listen(radio, PhaseTag::AckWait, k.noack_listen);
        }
        AttemptOutcome::AccessFailure => unreachable!("handled above"),
    }
    ledger.accrue(radio, RadioState::Idle, PhaseTag::Ifs, k.ifs);
}

fn ledger_on_transaction(ledger: &mut EnergyLedger, radio: &RadioModel) {
    // Second wake-up for the transaction (the node slept between the
    // beacon and its packet-ready offset).
    ledger.accrue_transition(
        radio,
        RadioState::Shutdown,
        RadioState::Idle,
        PhaseTag::Contention,
    );
}

fn ledger_on_gts(
    ledger: &mut EnergyLedger,
    radio: &RadioModel,
    level: TxPowerLevel,
    k: &AccountingConsts,
    r: &GtsRecord,
) {
    // Wake for the dedicated slot, transmit without any contention,
    // listen for the acknowledgement, observe the interframe spacing.
    // Everything is attributed to the GTS phase, so the CFP energy
    // split is exact.
    ledger.accrue_transition(radio, RadioState::Shutdown, RadioState::Idle, PhaseTag::Gts);
    ledger.accrue_transition(
        radio,
        RadioState::Idle,
        RadioState::Tx(level),
        PhaseTag::Gts,
    );
    ledger.accrue(
        radio,
        RadioState::Tx(level),
        PhaseTag::Gts,
        k.packet_airtime,
    );
    ledger.accrue_transition(radio, RadioState::Tx(level), RadioState::Rx, PhaseTag::Gts);
    let listen = if r.delivered { k.t_ack } else { k.noack_listen };
    ledger.accrue_listen(radio, PhaseTag::Gts, listen);
    ledger.accrue(radio, RadioState::Idle, PhaseTag::Gts, k.ifs);
}

fn ledger_on_downlink(
    ledger: &mut EnergyLedger,
    radio: &RadioModel,
    level: TxPowerLevel,
    k: &AccountingConsts,
    r: &DownlinkRecord,
) {
    if r.outcome == DownlinkOutcome::Deferred {
        // The node was mid-uplink; its radio time is already billed.
        return;
    }
    // One wake-up per poll (the downlink analogue of the
    // per-transaction wake `on_transaction` charges to Contention),
    // then data-request contention: idle between the CCA turn-ons,
    // the uplink attempt pattern attributed to the downlink phase.
    ledger.accrue_transition(
        radio,
        RadioState::Shutdown,
        RadioState::Idle,
        PhaseTag::Downlink,
    );
    let wall = k.slot * r.contention_slots as f64;
    let cca_active = (k.turn_on + k.cca_sense) * r.ccas as f64;
    ledger.accrue(
        radio,
        RadioState::Idle,
        PhaseTag::Downlink,
        (wall - cca_active).max(Seconds::ZERO),
    );
    for _ in 0..r.ccas {
        ledger.accrue_transition(radio, RadioState::Idle, RadioState::Rx, PhaseTag::Downlink);
        ledger.accrue_listen(radio, PhaseTag::Downlink, k.cca_sense);
    }
    if r.outcome == DownlinkOutcome::AccessFailure {
        return;
    }
    // Transmit the data request.
    ledger.accrue_transition(
        radio,
        RadioState::Idle,
        RadioState::Tx(level),
        PhaseTag::Downlink,
    );
    ledger.accrue(
        radio,
        RadioState::Tx(level),
        PhaseTag::Downlink,
        k.dl_request_air,
    );
    ledger.accrue_transition(
        radio,
        RadioState::Tx(level),
        RadioState::Rx,
        PhaseTag::Downlink,
    );
    if r.outcome == DownlinkOutcome::Collided {
        // No acknowledgement ever comes: wait out t_ack⁺.
        ledger.accrue_listen(radio, PhaseTag::Downlink, k.noack_listen);
        ledger.accrue(radio, RadioState::Idle, PhaseTag::Downlink, k.ifs);
        return;
    }
    // Request acknowledgement, then the (promptly answered) downlink
    // frame — the receiver stays on throughout, as in the analytical
    // `downlink_cost` with a prompt coordinator.
    ledger.accrue(
        radio,
        RadioState::Rx,
        PhaseTag::Downlink,
        k.turnaround + k.t_ack,
    );
    ledger.accrue(
        radio,
        RadioState::Rx,
        PhaseTag::Downlink,
        k.turnaround + k.packet_airtime,
    );
    if r.outcome == DownlinkOutcome::Delivered {
        // Acknowledge the frame (turnaround + ACK airtime at TX
        // power, the analytical model's `acknowledge` term).
        ledger.accrue(
            radio,
            RadioState::Tx(level),
            PhaseTag::Downlink,
            k.turnaround + k.t_ack,
        );
    }
    ledger.accrue(radio, RadioState::Idle, PhaseTag::Downlink, k.ifs);
}

/// Ledger-side cost of a fault record. The scalar bookkeeping
/// (missed-beacon counts, join-failure counter, fault statistics) is the
/// caller's job — this accrues only the radio energy, which is exactly
/// the part that per-node shards can own.
fn ledger_on_fault(
    ledger: &mut EnergyLedger,
    radio: &RadioModel,
    level: TxPowerLevel,
    k: &AccountingConsts,
    r: &FaultRecord,
) {
    match r.kind {
        FaultKind::MissedBeacon { listened } => {
            if listened {
                // Orphan scan: the node wakes on schedule, turns the
                // receiver on and listens out the beacon window, but
                // nothing comes. Same residencies as a received
                // beacon, charged to the association phase.
                ledger.accrue_transition(
                    radio,
                    RadioState::Shutdown,
                    RadioState::Idle,
                    PhaseTag::Association,
                );
                ledger.accrue(radio, RadioState::Idle, PhaseTag::Association, k.margin);
                ledger.accrue_transition(
                    radio,
                    RadioState::Idle,
                    RadioState::Rx,
                    PhaseTag::Association,
                );
                ledger.accrue(radio, RadioState::Rx, PhaseTag::Association, k.t_beacon);
            }
        }
        FaultKind::JoinAttempt { success } => {
            // Association request/response exchange: wake, transmit
            // the request (a MAC command the size of a data request),
            // then wait for the acknowledgement and — on success — the
            // association response after a turnaround, receiver on
            // throughout. A lost response costs the full no-ACK window.
            ledger.accrue_transition(
                radio,
                RadioState::Shutdown,
                RadioState::Idle,
                PhaseTag::Association,
            );
            ledger.accrue_transition(
                radio,
                RadioState::Idle,
                RadioState::Tx(level),
                PhaseTag::Association,
            );
            ledger.accrue(
                radio,
                RadioState::Tx(level),
                PhaseTag::Association,
                k.dl_request_air,
            );
            ledger.accrue_transition(
                radio,
                RadioState::Tx(level),
                RadioState::Rx,
                PhaseTag::Association,
            );
            if success {
                ledger.accrue(
                    radio,
                    RadioState::Rx,
                    PhaseTag::Association,
                    k.turnaround + k.t_ack,
                );
                ledger.accrue(
                    radio,
                    RadioState::Rx,
                    PhaseTag::Association,
                    k.turnaround + k.t_ack,
                );
            } else {
                ledger.accrue_listen(radio, PhaseTag::Association, k.noack_listen);
            }
            ledger.accrue(radio, RadioState::Idle, PhaseTag::Association, k.ifs);
        }
        // Deaths, rejoin confirmations and dormancy carry no radio
        // activity of their own.
        FaultKind::Death | FaultKind::Reassociated { .. } | FaultKind::Dormant => {}
    }
}

/// Online energy reducer: a [`TraceSink`] that accrues each record into
/// the per-node ledgers the moment its outcome is final, alongside the
/// transaction statistics ([`StatsSink`]).
#[derive(Debug)]
struct EnergyAccountant<'a> {
    cfg: &'a NetworkConfig,
    levels: &'a [TxPowerLevel],
    ledgers: Vec<EnergyLedger>,
    stats: StatsSink,
    /// Beacons each node woke for (or slept through) but did not receive
    /// — these superframes are excluded from the node's fixed beacon
    /// overhead in [`finish`](Self::finish).
    missed_beacons: Vec<u32>,
    /// Re-association exchanges whose response was lost (hit = failure).
    join_failures: Counter,
    /// Per-configuration constants hoisted off the per-record path.
    consts: AccountingConsts,
}

impl<'a> EnergyAccountant<'a> {
    fn new(cfg: &'a NetworkConfig, levels: &'a [TxPowerLevel]) -> Self {
        EnergyAccountant {
            cfg,
            levels,
            ledgers: vec![EnergyLedger::new(); cfg.channel.nodes],
            stats: StatsSink::new(),
            missed_beacons: vec![0; cfg.channel.nodes],
            join_failures: Counter::default(),
            consts: AccountingConsts::new(cfg),
        }
    }

    /// Adds the fixed beacon overhead and the sleep remainder, then folds
    /// everything into an (unsealed) mergeable accumulator.
    fn finish(self) -> NetworkAccumulator {
        finish_ledgers(
            self.cfg,
            self.ledgers,
            &self.missed_beacons,
            self.stats,
            self.join_failures,
        )
    }
}

/// The shared tail of every accounting run — serial or sharded: adds the
/// fixed beacon overhead and the sleep remainder to each node's ledger,
/// then folds everything into an (unsealed) mergeable accumulator. Runs
/// on one thread over the full (concatenated, node-ordered) ledger list,
/// so its fold order never depends on the shard count.
fn finish_ledgers(
    cfg: &NetworkConfig,
    mut ledgers: Vec<EnergyLedger>,
    missed_beacons: &[u32],
    stats: StatsSink,
    join_failures: Counter,
) -> NetworkAccumulator {
    let radio = &cfg.radio;
    let n_nodes = cfg.channel.nodes;
    let recorded_superframes = cfg.channel.superframes as f64 - 1.0;
    let t_ib = cfg.channel.beacon_interval();
    let window = t_ib * recorded_superframes;
    let t_beacon = beacon_duration();

    let mut acc = NetworkAccumulator::new();
    acc.node_powers.reserve(n_nodes);
    // Fixed per-superframe beacon overhead — preemptive wake-up (the
    // shutdown→idle transition plus any margin spent in idle),
    // receiver turn-on, beacon reception — is identical for every
    // node, so the per-superframe accrual loop runs **once** into a
    // prototype ledger that every node then merges: `finish` is
    // O(nodes + superframes) instead of O(nodes × superframes). The
    // beacon-phase cells of every per-node ledger start at zero, so
    // the merged values are the very sums the per-node loop produced.
    //
    // Nodes that missed beacons (outages, churn deaths) receive fewer
    // cycles; one ledger per distinct received count is cached so the
    // skipped cycles still come from the same repeated-addition loop —
    // and a fault-free run, where every node receives every beacon,
    // merges the single full prototype bit-identically.
    let margin = (cfg.wakeup_margin - radio.wakeup_time()).max(Seconds::ZERO);
    let beacon_cycles = |cycles: usize| {
        let mut l = EnergyLedger::new();
        for _ in 0..cycles {
            l.accrue_transition(
                radio,
                RadioState::Shutdown,
                RadioState::Idle,
                PhaseTag::Beacon,
            );
            l.accrue(radio, RadioState::Idle, PhaseTag::Beacon, margin);
            l.accrue_transition(radio, RadioState::Idle, RadioState::Rx, PhaseTag::Beacon);
            l.accrue(radio, RadioState::Rx, PhaseTag::Beacon, t_beacon);
        }
        l
    };
    let recorded = cfg.channel.superframes.saturating_sub(1);
    let beacon_ledger = beacon_cycles(recorded as usize);
    let mut partial: HashMap<u32, EnergyLedger> = HashMap::new();
    for (i, ledger) in ledgers.iter_mut().enumerate() {
        let missed = missed_beacons[i];
        if missed == 0 {
            ledger.merge(&beacon_ledger);
        } else {
            let received = recorded.saturating_sub(missed);
            let l = partial
                .entry(received)
                .or_insert_with(|| beacon_cycles(received as usize));
            ledger.merge(l);
        }
        // Sleep is the remainder of the window.
        let active = ledger.total_time();
        let sleep = (window - active).max(Seconds::ZERO);
        ledger.accrue(radio, RadioState::Shutdown, PhaseTag::Sleep, sleep);
        let power = ledger.average_power(window);
        acc.node_power_uw.push(power.microwatts());
        acc.node_powers.push(power);
        // CAP vs CFP split: what this node spent contending and
        // uplinking in the CAP versus its contention-free traffic.
        let cap_energy = ledger.energy_in_phase(PhaseTag::Contention)
            + ledger.energy_in_phase(PhaseTag::Transmit)
            + ledger.energy_in_phase(PhaseTag::AckWait)
            + ledger.energy_in_phase(PhaseTag::Ifs);
        let cfp_energy =
            ledger.energy_in_phase(PhaseTag::Gts) + ledger.energy_in_phase(PhaseTag::Downlink);
        acc.cap_uw.push((cap_energy / window).microwatts());
        acc.cfp_uw.push((cfp_energy / window).microwatts());
        acc.ledger.merge(ledger);
    }

    let delivered = stats.failures.trials() - stats.failures.hits();
    acc.delivered_payload_bits = delivered as f64 * cfg.channel.packet.payload_bits() as f64;
    acc.failures = stats.failures;
    acc.attempts = stats.attempts;
    // Delays were accumulated in superframes; rescale to seconds once,
    // exactly, so accumulators from channels with different beacon
    // intervals merge in common units.
    acc.delay_secs = stats.delivery_superframes.scaled(t_ib.secs());
    acc.overruns = stats.overruns;
    acc.gts_failures = stats.gts_failures;
    acc.gts_denied = cfg.channel.cfp.gts_denied as u64;
    acc.downlink_failures = stats.downlink_failures;
    acc.downlink_deferred = stats.downlink_deferred;
    acc.deaths = stats.deaths;
    acc.orphan_scans = stats.orphan_scans;
    acc.join_failures = join_failures;
    // Re-association latencies arrive in superframes; rescale once,
    // like the delivery delays.
    acc.reassoc_delay_secs = stats.reassoc_superframes.scaled(t_ib.secs());
    acc.dormant_nodes = stats.dormant_nodes;
    acc
}

impl TraceSink for EnergyAccountant<'_> {
    fn on_attempt(&mut self, a: &AttemptRecord) {
        self.stats.on_attempt(a);
        let node = a.node as usize;
        ledger_on_attempt(
            &mut self.ledgers[node],
            &self.cfg.radio,
            self.levels[node],
            &self.consts,
            a,
        );
    }

    fn on_transaction(&mut self, t: &TransactionRecord) {
        self.stats.on_transaction(t);
        ledger_on_transaction(&mut self.ledgers[t.node as usize], &self.cfg.radio);
    }

    fn on_overrun(&mut self) {
        self.stats.on_overrun();
    }

    fn on_gts(&mut self, r: &GtsRecord) {
        self.stats.on_gts(r);
        let node = r.node as usize;
        ledger_on_gts(
            &mut self.ledgers[node],
            &self.cfg.radio,
            self.levels[node],
            &self.consts,
            r,
        );
    }

    fn on_downlink(&mut self, r: &DownlinkRecord) {
        self.stats.on_downlink(r);
        let node = r.node as usize;
        ledger_on_downlink(
            &mut self.ledgers[node],
            &self.cfg.radio,
            self.levels[node],
            &self.consts,
            r,
        );
    }

    fn on_fault(&mut self, r: &FaultRecord) {
        self.stats.on_fault(r);
        let node = r.node as usize;
        match r.kind {
            FaultKind::MissedBeacon { .. } => {
                // This superframe's fixed beacon cycle must not be billed
                // in `finish` — the beacon never arrived.
                self.missed_beacons[node] += 1;
            }
            FaultKind::JoinAttempt { success } => {
                self.join_failures.observe(!success);
            }
            FaultKind::Death | FaultKind::Reassociated { .. } | FaultKind::Dormant => {}
        }
        ledger_on_fault(
            &mut self.ledgers[node],
            &self.cfg.radio,
            self.levels[node],
            &self.consts,
            r,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_phy::ber::EmpiricalCc2420Ber;
    use wsn_radio::state::StateKind;

    fn small_config(load: f64, loss_db: f64, seed: u64) -> NetworkConfig {
        let mut channel = ChannelSimConfig::figure6(120, load, seed);
        channel.nodes = 20;
        channel.superframes = 8;
        NetworkConfig {
            path_losses: vec![Db::new(loss_db); channel.nodes].into(),
            channel,
            radio: RadioModel::cc2420(),
            tx_policy: TxPowerPolicy::ChannelInversion {
                target_rx: DBm::new(-88.0),
            },
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
            corrupt_probs: None,
        }
    }

    #[test]
    fn average_power_is_hundreds_of_microwatts() {
        let report =
            NetworkSimulator::new(small_config(0.4, 70.0, 1)).run(&EmpiricalCc2420Ber::paper());
        let uw = report.mean_node_power.microwatts();
        assert!(
            (50.0..1000.0).contains(&uw),
            "mean node power {uw} µW outside plausible band"
        );
    }

    #[test]
    fn sleep_dominates_time_but_not_energy() {
        let report =
            NetworkSimulator::new(small_config(0.4, 70.0, 2)).run(&EmpiricalCc2420Ber::paper());
        let fractions = report.ledger.state_time_fractions();
        let shutdown_frac = fractions
            .iter()
            .find(|(k, _)| *k == StateKind::Shutdown)
            .unwrap()
            .1;
        assert!(
            shutdown_frac > 0.90,
            "nodes should sleep ≥90 % of the time, got {shutdown_frac}"
        );
        let sleep_energy = report.ledger.energy_in_phase(PhaseTag::Sleep);
        assert!(sleep_energy < report.ledger.total_energy() * 0.05);
    }

    #[test]
    fn good_links_deliver_reliably() {
        let report =
            NetworkSimulator::new(small_config(0.2, 60.0, 3)).run(&EmpiricalCc2420Ber::paper());
        assert!(
            report.failure_ratio.value() < 0.1,
            "failure ratio {} too high for a 60 dB path",
            report.failure_ratio
        );
        assert!(report.mean_delay >= Seconds::ZERO);
        assert!(report.mean_attempts >= 1.0);
    }

    #[test]
    fn bad_links_fail_often_and_spend_more() {
        let good =
            NetworkSimulator::new(small_config(0.3, 60.0, 4)).run(&EmpiricalCc2420Ber::paper());
        // 94 dB path: even 0 dBm arrives at −94 dBm where BER is high.
        let bad =
            NetworkSimulator::new(small_config(0.3, 94.0, 4)).run(&EmpiricalCc2420Ber::paper());
        assert!(bad.failure_ratio.value() > good.failure_ratio.value());
        assert!(bad.mean_attempts > good.mean_attempts);
        assert!(bad.energy_per_bit_nj > good.energy_per_bit_nj);
    }

    #[test]
    fn channel_inversion_picks_cheapest_sufficient_level() {
        let losses = [Db::new(55.0), Db::new(75.0), Db::new(95.0)];
        let levels = TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        }
        .resolve(&losses);
        assert_eq!(levels[0], TxPowerLevel::Neg25); // −25 − 55 = −80 ≥ −88
        assert_eq!(levels[1], TxPowerLevel::Neg10); // −10 − 75 = −85 ≥ −88
        assert_eq!(levels[2], TxPowerLevel::Zero); // unreachable → strongest
    }

    #[test]
    fn ledger_views_agree() {
        let report =
            NetworkSimulator::new(small_config(0.4, 75.0, 5)).run(&EmpiricalCc2420Ber::paper());
        let by_state: f64 = StateKind::ALL
            .iter()
            .map(|&k| report.ledger.energy_in(k).joules())
            .sum();
        let by_phase: f64 = PhaseTag::ALL
            .iter()
            .map(|&p| report.ledger.energy_in_phase(p).joules())
            .sum();
        assert!((by_state - by_phase).abs() < 1e-12);
    }

    #[test]
    fn deterministic_reports() {
        let a = NetworkSimulator::new(small_config(0.4, 70.0, 9)).run(&EmpiricalCc2420Ber::paper());
        let b = NetworkSimulator::new(small_config(0.4, 70.0, 9)).run(&EmpiricalCc2420Ber::paper());
        assert_eq!(a.mean_node_power, b.mean_node_power);
        assert_eq!(a.failure_ratio, b.failure_ratio);
    }

    #[test]
    #[should_panic(expected = "one path loss per node")]
    fn mismatched_losses_rejected() {
        let mut cfg = small_config(0.4, 70.0, 1);
        let short: Vec<Db> = cfg.path_losses[..cfg.path_losses.len() - 1].to_vec();
        cfg.path_losses = short.into();
        let _ = NetworkSimulator::new(cfg);
    }

    // --- CFP accounting --------------------------------------------------

    use crate::cfp::plan_channel_cfp;

    #[test]
    fn cap_only_runs_report_zero_cfp_power() {
        let summary = NetworkSimulator::new(small_config(0.4, 70.0, 21))
            .run_streaming(&EmpiricalCc2420Ber::paper());
        assert_eq!(summary.cfp_power.microwatts(), 0.0);
        assert!(summary.cap_power.microwatts() > 0.0);
        assert_eq!(summary.gts_transactions, 0);
        assert_eq!(summary.downlink_polls, 0);
        assert_eq!(summary.gts_denied, 0);
    }

    #[test]
    fn gts_offload_shifts_energy_from_cap_to_cfp() {
        let ber = EmpiricalCc2420Ber::paper();
        let base = small_config(0.4, 70.0, 22);
        let mut gts = base.clone();
        gts.channel.cfp = plan_channel_cfp(gts.channel.nodes as u32, 7, 1, 8, 0.0);
        let cap_only = NetworkSimulator::new(base).run_streaming(&ber);
        let offloaded = NetworkSimulator::new(gts).run_streaming(&ber);
        assert!(offloaded.cfp_power.microwatts() > 0.0);
        assert!(offloaded.cap_power < cap_only.cap_power);
        assert!(offloaded.gts_transactions > 0);
        // GTS holders skip contention entirely, so their traffic is
        // cheaper than a CSMA transaction: total power must not rise.
        assert!(offloaded.mean_node_power < cap_only.mean_node_power);
        // The ledger's GTS phase carries the CFP energy.
        assert!(offloaded.ledger.energy_in_phase(PhaseTag::Gts).joules() > 0.0);
        assert_eq!(cap_only.ledger.energy_in_phase(PhaseTag::Gts).joules(), 0.0);
    }

    #[test]
    fn downlink_polling_charges_the_downlink_phase() {
        let ber = EmpiricalCc2420Ber::paper();
        let base = small_config(0.3, 65.0, 23);
        let mut polled = base.clone();
        polled.channel.cfp = plan_channel_cfp(polled.channel.nodes as u32, 0, 1, 8, 0.8);
        let quiet = NetworkSimulator::new(base).run_streaming(&ber);
        let busy = NetworkSimulator::new(polled).run_streaming(&ber);
        assert!(busy.downlink_polls > 0);
        assert!(busy.cfp_power.microwatts() > 0.0);
        assert!(busy.ledger.energy_in_phase(PhaseTag::Downlink).joules() > 0.0);
        // Bidirectional traffic costs strictly more than uplink alone.
        assert!(busy.mean_node_power > quiet.mean_node_power);
        assert!(busy.downlink_failure_ratio.value() < 0.5);
        assert_eq!(quiet.downlink_polls, 0);
    }

    #[test]
    fn cfp_ledger_views_still_agree() {
        let mut cfg = small_config(0.4, 75.0, 24);
        cfg.channel.cfp = plan_channel_cfp(cfg.channel.nodes as u32, 5, 1, 8, 0.5);
        let summary = NetworkSimulator::new(cfg).run_streaming(&EmpiricalCc2420Ber::paper());
        let by_state: f64 = StateKind::ALL
            .iter()
            .map(|&k| summary.ledger.energy_in(k).joules())
            .sum();
        let by_phase: f64 = PhaseTag::ALL
            .iter()
            .map(|&p| summary.ledger.energy_in_phase(p).joules())
            .sum();
        assert!((by_state - by_phase).abs() < 1e-12);
        // cap + cfp + beacon + sleep ≈ total mean power.
        let split = summary.cap_power + summary.cfp_power;
        assert!(split < summary.mean_node_power);
    }

    #[test]
    fn gts_denied_count_survives_merge_and_summary() {
        let mut cfg = small_config(0.4, 70.0, 25);
        // 20 nodes all want a slot; 7 granted, 13 denied.
        cfg.channel.cfp = plan_channel_cfp(cfg.channel.nodes as u32, 20, 1, 8, 0.0);
        let ber = EmpiricalCc2420Ber::paper();
        let sim = NetworkSimulator::new(cfg);
        let mut a = sim.run_accumulate(&ber);
        a.seal_replication();
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.summary().gts_denied, 26, "13 denied per merged run");
    }
}
