//! Property-based tests for the radio model and the energy ledger.

use proptest::prelude::*;

use wsn_radio::ledger::{EnergyLedger, PhaseTag};
use wsn_radio::state::StateKind;
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_units::Seconds;

fn arb_state() -> impl Strategy<Value = RadioState> {
    prop_oneof![
        Just(RadioState::Shutdown),
        Just(RadioState::Idle),
        Just(RadioState::Rx),
        (0usize..8).prop_map(|i| RadioState::Tx(TxPowerLevel::ALL[i])),
    ]
}

fn arb_phase() -> impl Strategy<Value = PhaseTag> {
    (0usize..PhaseTag::ALL.len()).prop_map(|i| PhaseTag::ALL[i])
}

proptest! {
    /// The ledger's two views (by state, by phase) agree on totals after
    /// any sequence of accruals.
    #[test]
    fn ledger_views_always_balance(
        ops in proptest::collection::vec((arb_state(), arb_phase(), 0.0..10.0f64), 1..60)
    ) {
        let radio = RadioModel::cc2420();
        let mut ledger = EnergyLedger::new();
        for (state, phase, ms) in ops {
            ledger.accrue(&radio, state, phase, Seconds::from_millis(ms));
        }
        let by_state: f64 = StateKind::ALL.iter().map(|&k| ledger.energy_in(k).joules()).sum();
        let by_phase: f64 = PhaseTag::ALL.iter().map(|&p| ledger.energy_in_phase(p).joules()).sum();
        let total = ledger.total_energy().joules();
        prop_assert!((by_state - total).abs() <= total * 1e-12 + 1e-18);
        prop_assert!((by_phase - total).abs() <= total * 1e-12 + 1e-18);

        let t_state: f64 = StateKind::ALL.iter().map(|&k| ledger.time_in(k).secs()).sum();
        prop_assert!((t_state - ledger.total_time().secs()).abs() < 1e-12 + t_state * 1e-12);
    }

    /// Merging ledgers equals accruing on a single ledger.
    #[test]
    fn merge_is_addition(
        ops_a in proptest::collection::vec((arb_state(), arb_phase(), 0.0..5.0f64), 1..20),
        ops_b in proptest::collection::vec((arb_state(), arb_phase(), 0.0..5.0f64), 1..20),
    ) {
        let radio = RadioModel::cc2420();
        let mut la = EnergyLedger::new();
        let mut lb = EnergyLedger::new();
        let mut combined = EnergyLedger::new();
        for (s, p, ms) in &ops_a {
            la.accrue(&radio, *s, *p, Seconds::from_millis(*ms));
            combined.accrue(&radio, *s, *p, Seconds::from_millis(*ms));
        }
        for (s, p, ms) in &ops_b {
            lb.accrue(&radio, *s, *p, Seconds::from_millis(*ms));
            combined.accrue(&radio, *s, *p, Seconds::from_millis(*ms));
        }
        la.merge(&lb);
        prop_assert!((la.total_energy().joules() - combined.total_energy().joules()).abs()
            < 1e-12 + combined.total_energy().joules() * 1e-9);
    }

    /// Transition scaling is linear in time and energy for every legal
    /// transition.
    #[test]
    fn transition_scaling_is_linear(factor in 0.05..4.0f64) {
        let base = RadioModel::cc2420();
        let scaled = RadioModel::builder().transition_scale(factor).build();
        for (from, to) in [
            (RadioState::Shutdown, RadioState::Idle),
            (RadioState::Idle, RadioState::Rx),
            (RadioState::Idle, RadioState::Tx(TxPowerLevel::Zero)),
            (RadioState::Rx, RadioState::Tx(TxPowerLevel::Neg5)),
        ] {
            let b = base.transition(from, to).unwrap();
            let s = scaled.transition(from, to).unwrap();
            prop_assert!((s.time.secs() - b.time.secs() * factor).abs() < 1e-15);
            prop_assert!((s.energy.joules() - b.energy.joules() * factor).abs() < 1e-15);
        }
    }

    /// Legality of transitions is independent of model parameters.
    #[test]
    fn transition_legality_is_structural(factor in 0.1..2.0f64) {
        let base = RadioModel::cc2420();
        let variant = RadioModel::builder().transition_scale(factor).build();
        let states = [
            RadioState::Shutdown,
            RadioState::Idle,
            RadioState::Rx,
            RadioState::Tx(TxPowerLevel::Neg7),
        ];
        for &from in &states {
            for &to in &states {
                prop_assert_eq!(
                    base.transition(from, to).is_some(),
                    variant.transition(from, to).is_some()
                );
            }
        }
    }

    /// Average power over a window never exceeds the strongest state power
    /// involved.
    #[test]
    fn average_power_is_bounded(
        ops in proptest::collection::vec((arb_state(), 0.001..10.0f64), 1..30)
    ) {
        let radio = RadioModel::cc2420();
        let mut ledger = EnergyLedger::new();
        let mut max_power = 0.0f64;
        let mut total_ms = 0.0;
        for (state, ms) in ops {
            ledger.accrue(&radio, state, PhaseTag::Other, Seconds::from_millis(ms));
            max_power = max_power.max(radio.state_power(state).watts());
            total_ms += ms;
        }
        let avg = ledger.average_power(Seconds::from_millis(total_ms));
        prop_assert!(avg.watts() <= max_power * (1.0 + 1e-9));
    }
}
