//! A stateful transceiver: model + current state + ledger, with legality
//! checking on every requested transition.

use core::fmt;

use wsn_units::Seconds;

use crate::ledger::{EnergyLedger, PhaseTag};
use crate::model::RadioModel;
use crate::state::RadioState;

/// Error returned when a state switch is not physically possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// State the radio was in.
    pub from: RadioState,
    /// State that was requested.
    pub to: RadioState,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "radio cannot switch from {} to {} directly",
            self.from, self.to
        )
    }
}

impl std::error::Error for TransitionError {}

/// A transceiver instance: couples a [`RadioModel`] with the current state
/// and an [`EnergyLedger`].
///
/// Used by the discrete-event simulator; the analytical model works with the
/// bare [`RadioModel`] instead.
///
/// # Examples
///
/// ```
/// use wsn_radio::{PhaseTag, RadioState, RadioStateMachine, RadioModel};
/// use wsn_units::Seconds;
///
/// let mut radio = RadioStateMachine::new(RadioModel::cc2420());
/// // Wake up 1 ms before the beacon …
/// let settle = radio.switch(RadioState::Idle, PhaseTag::Beacon)?;
/// assert!((settle.micros() - 970.0).abs() < 1e-9);
/// // … turn the receiver on and listen for the beacon.
/// radio.switch(RadioState::Rx, PhaseTag::Beacon)?;
/// radio.stay(Seconds::from_micros(608.0), PhaseTag::Beacon);
/// assert!(radio.ledger().total_energy().microjoules() > 20.0);
/// # Ok::<(), wsn_radio::TransitionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RadioStateMachine {
    model: RadioModel,
    state: RadioState,
    ledger: EnergyLedger,
}

impl RadioStateMachine {
    /// Creates a machine in the shutdown state with an empty ledger.
    pub fn new(model: RadioModel) -> Self {
        RadioStateMachine {
            model,
            state: RadioState::Shutdown,
            ledger: EnergyLedger::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> RadioState {
        self.state
    }

    /// The underlying model.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// The accumulated ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Consumes the machine, returning its ledger.
    pub fn into_ledger(self) -> EnergyLedger {
        self.ledger
    }

    /// Remains in the current state for `duration`, billed to `phase`.
    pub fn stay(&mut self, duration: Seconds, phase: PhaseTag) {
        self.ledger.accrue(&self.model, self.state, phase, duration);
    }

    /// Remains in RX at *listen* power (CCA / ACK wait) for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if the radio is not in the RX state.
    pub fn listen(&mut self, duration: Seconds, phase: PhaseTag) {
        assert_eq!(
            self.state,
            RadioState::Rx,
            "listen() requires the receiver to be on"
        );
        self.ledger.accrue_listen(&self.model, phase, duration);
    }

    /// Switches to `target`, billing the transition to `phase`; returns the
    /// settle time the caller must advance its clock by.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] if the hardware cannot make this switch
    /// (e.g. shutdown → RX without passing through idle).
    pub fn switch(
        &mut self,
        target: RadioState,
        phase: PhaseTag,
    ) -> Result<Seconds, TransitionError> {
        match self
            .ledger
            .accrue_transition(&self.model, self.state, target, phase)
        {
            Some(t) => {
                self.state = target;
                Ok(t.time)
            }
            None => Err(TransitionError {
                from: self.state,
                to: target,
            }),
        }
    }

    /// Switches via idle if a direct transition is illegal; returns total
    /// settle time. This is the "safe path" a driver would take.
    pub fn switch_via_idle(
        &mut self,
        target: RadioState,
        phase: PhaseTag,
    ) -> Result<Seconds, TransitionError> {
        match self.switch(target, phase) {
            Ok(t) => Ok(t),
            Err(_) => {
                let t1 = self.switch(RadioState::Idle, phase)?;
                let t2 = self.switch(target, phase)?;
                Ok(t1 + t2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateKind, TxPowerLevel};

    #[test]
    fn starts_shutdown() {
        let m = RadioStateMachine::new(RadioModel::cc2420());
        assert_eq!(m.state(), RadioState::Shutdown);
    }

    #[test]
    fn legal_path_accumulates_energy() {
        let mut m = RadioStateMachine::new(RadioModel::cc2420());
        m.switch(RadioState::Idle, PhaseTag::Beacon).unwrap();
        m.switch(RadioState::Rx, PhaseTag::Beacon).unwrap();
        m.stay(Seconds::from_micros(608.0), PhaseTag::Beacon);
        m.switch(RadioState::Idle, PhaseTag::Contention).unwrap();
        m.switch(RadioState::Tx(TxPowerLevel::Zero), PhaseTag::Transmit)
            .unwrap();
        m.stay(Seconds::from_millis(4.256), PhaseTag::Transmit);
        m.switch(RadioState::Idle, PhaseTag::AckWait).unwrap();
        m.switch(RadioState::Shutdown, PhaseTag::Sleep).unwrap();
        assert_eq!(m.state(), RadioState::Shutdown);

        let l = m.ledger();
        // TX energy dominates: 4.256 ms × 30.672 mW ≈ 130.5 µJ.
        assert!((l.energy_in(StateKind::Tx).microjoules() - 136.6).abs() < 1.0);
        assert!(l.energy_in_phase(PhaseTag::Transmit) > l.energy_in_phase(PhaseTag::Beacon));
    }

    #[test]
    fn illegal_switch_errors_and_preserves_state() {
        let mut m = RadioStateMachine::new(RadioModel::cc2420());
        let err = m.switch(RadioState::Rx, PhaseTag::Other).unwrap_err();
        assert_eq!(err.from, RadioState::Shutdown);
        assert_eq!(err.to, RadioState::Rx);
        assert_eq!(m.state(), RadioState::Shutdown);
        assert_eq!(
            err.to_string(),
            "radio cannot switch from shutdown to rx directly"
        );
    }

    #[test]
    fn switch_via_idle_takes_two_hops() {
        let mut m = RadioStateMachine::new(RadioModel::cc2420());
        let t = m.switch_via_idle(RadioState::Rx, PhaseTag::Beacon).unwrap();
        // 970 µs wake-up + 194 µs turn-on.
        assert!((t.micros() - 1164.0).abs() < 1e-9);
        assert_eq!(m.state(), RadioState::Rx);
    }

    #[test]
    #[should_panic(expected = "requires the receiver")]
    fn listen_outside_rx_panics() {
        let mut m = RadioStateMachine::new(RadioModel::cc2420());
        m.listen(Seconds::from_micros(128.0), PhaseTag::Contention);
    }

    #[test]
    fn into_ledger_returns_accumulated() {
        let mut m = RadioStateMachine::new(RadioModel::cc2420());
        m.switch(RadioState::Idle, PhaseTag::Other).unwrap();
        m.stay(Seconds::from_millis(1.0), PhaseTag::Other);
        let l = m.into_ledger();
        assert!(l.total_energy().nanojoules() > 0.0);
    }
}
