//! Radio states and the CC2420's programmable transmit power steps.

use core::fmt;

use wsn_units::{Current, DBm};

/// The eight programmable CC2420 output power steps, −25 … 0 dBm, with the
/// supply currents measured by the paper (Figure 3).
///
/// Levels order from weakest to strongest; `Ord` follows output power, so
/// `TxPowerLevel::Neg25 < TxPowerLevel::Zero`.
///
/// # Examples
///
/// ```
/// use wsn_radio::TxPowerLevel;
/// use wsn_units::DBm;
///
/// // Channel inversion: cheapest level that still delivers −88 dBm over a
/// // 78 dB path is −10 dBm.
/// let lvl = TxPowerLevel::cheapest_reaching(DBm::new(-10.0)).unwrap();
/// assert_eq!(lvl, TxPowerLevel::Neg10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TxPowerLevel {
    /// −25 dBm output, 8.42 mA.
    Neg25,
    /// −15 dBm output, 9.71 mA.
    Neg15,
    /// −10 dBm output, 10.9 mA.
    Neg10,
    /// −7 dBm output, 12.17 mA.
    Neg7,
    /// −5 dBm output, 12.27 mA (as printed in the paper's Figure 3).
    Neg5,
    /// −3 dBm output, 14.63 mA.
    Neg3,
    /// −1 dBm output, 15.785 mA.
    Neg1,
    /// 0 dBm output, 17.04 mA.
    Zero,
}

impl TxPowerLevel {
    /// All levels from weakest to strongest.
    pub const ALL: [TxPowerLevel; 8] = [
        TxPowerLevel::Neg25,
        TxPowerLevel::Neg15,
        TxPowerLevel::Neg10,
        TxPowerLevel::Neg7,
        TxPowerLevel::Neg5,
        TxPowerLevel::Neg3,
        TxPowerLevel::Neg1,
        TxPowerLevel::Zero,
    ];

    /// The radiated output power.
    pub fn output_power(self) -> DBm {
        DBm::new(match self {
            TxPowerLevel::Neg25 => -25.0,
            TxPowerLevel::Neg15 => -15.0,
            TxPowerLevel::Neg10 => -10.0,
            TxPowerLevel::Neg7 => -7.0,
            TxPowerLevel::Neg5 => -5.0,
            TxPowerLevel::Neg3 => -3.0,
            TxPowerLevel::Neg1 => -1.0,
            TxPowerLevel::Zero => 0.0,
        })
    }

    /// Supply current drawn in this transmit state (paper Figure 3).
    pub fn supply_current(self) -> Current {
        Current::from_milliamps(match self {
            TxPowerLevel::Neg25 => 8.42,
            TxPowerLevel::Neg15 => 9.71,
            TxPowerLevel::Neg10 => 10.9,
            TxPowerLevel::Neg7 => 12.17,
            TxPowerLevel::Neg5 => 12.27,
            TxPowerLevel::Neg3 => 14.63,
            TxPowerLevel::Neg1 => 15.785,
            TxPowerLevel::Zero => 17.04,
        })
    }

    /// Returns the weakest level whose output power is at least `required`,
    /// or `None` if even 0 dBm is insufficient.
    pub fn cheapest_reaching(required: DBm) -> Option<TxPowerLevel> {
        Self::ALL
            .into_iter()
            .find(|lvl| lvl.output_power() >= required)
    }

    /// The strongest available level.
    pub fn strongest() -> TxPowerLevel {
        TxPowerLevel::Zero
    }

    /// The weakest available level.
    pub fn weakest() -> TxPowerLevel {
        TxPowerLevel::Neg25
    }
}

impl fmt::Display for TxPowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.output_power())
    }
}

/// The four operating states of a CC2420-class transceiver.
///
/// Transmit carries its power level so that the energy ledger can bill the
/// correct supply current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RadioState {
    /// Crystal off; only leakage. Wake-up requires ~1 ms.
    Shutdown,
    /// Clock running, radio circuitry off; can accept commands.
    Idle,
    /// Receiver active (also used for clear channel assessment).
    Rx,
    /// Transmitter active at the given power step.
    Tx(TxPowerLevel),
}

impl RadioState {
    /// `true` if this is any transmit state.
    pub fn is_tx(self) -> bool {
        matches!(self, RadioState::Tx(_))
    }

    /// A coarse state kind that ignores the TX power level, used as a
    /// breakdown key (Figure 9b groups all TX levels together).
    pub fn kind(self) -> StateKind {
        match self {
            RadioState::Shutdown => StateKind::Shutdown,
            RadioState::Idle => StateKind::Idle,
            RadioState::Rx => StateKind::Rx,
            RadioState::Tx(_) => StateKind::Tx,
        }
    }
}

impl fmt::Display for RadioState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadioState::Shutdown => write!(f, "shutdown"),
            RadioState::Idle => write!(f, "idle"),
            RadioState::Rx => write!(f, "rx"),
            RadioState::Tx(lvl) => write!(f, "tx@{lvl}"),
        }
    }
}

/// Radio state with the transmit power level erased — the four rows of the
/// paper's Figure 9b time breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StateKind {
    /// Shutdown state.
    Shutdown,
    /// Idle state.
    Idle,
    /// Receive state.
    Rx,
    /// Transmit state (any power level).
    Tx,
}

impl StateKind {
    /// All four kinds in display order.
    pub const ALL: [StateKind; 4] = [
        StateKind::Shutdown,
        StateKind::Idle,
        StateKind::Rx,
        StateKind::Tx,
    ];
}

impl fmt::Display for StateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateKind::Shutdown => write!(f, "shutdown"),
            StateKind::Idle => write!(f, "idle"),
            StateKind::Rx => write!(f, "rx"),
            StateKind::Tx => write!(f, "tx"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotone_in_power_and_current() {
        for pair in TxPowerLevel::ALL.windows(2) {
            assert!(pair[0].output_power() < pair[1].output_power());
            assert!(
                pair[0].supply_current() < pair[1].supply_current(),
                "current not monotone between {} and {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn cheapest_reaching_picks_boundary_levels() {
        assert_eq!(
            TxPowerLevel::cheapest_reaching(DBm::new(-30.0)),
            Some(TxPowerLevel::Neg25)
        );
        assert_eq!(
            TxPowerLevel::cheapest_reaching(DBm::new(-25.0)),
            Some(TxPowerLevel::Neg25)
        );
        assert_eq!(
            TxPowerLevel::cheapest_reaching(DBm::new(-24.9)),
            Some(TxPowerLevel::Neg15)
        );
        assert_eq!(
            TxPowerLevel::cheapest_reaching(DBm::new(0.0)),
            Some(TxPowerLevel::Zero)
        );
        assert_eq!(TxPowerLevel::cheapest_reaching(DBm::new(0.1)), None);
    }

    #[test]
    fn ordering_follows_power() {
        assert!(TxPowerLevel::Neg25 < TxPowerLevel::Zero);
        assert!(TxPowerLevel::weakest() < TxPowerLevel::strongest());
    }

    #[test]
    fn state_kind_erases_tx_level() {
        assert_eq!(RadioState::Tx(TxPowerLevel::Neg25).kind(), StateKind::Tx);
        assert_eq!(RadioState::Tx(TxPowerLevel::Zero).kind(), StateKind::Tx);
        assert_eq!(RadioState::Rx.kind(), StateKind::Rx);
        assert!(RadioState::Tx(TxPowerLevel::Zero).is_tx());
        assert!(!RadioState::Idle.is_tx());
    }

    #[test]
    fn display_formats() {
        assert_eq!(RadioState::Shutdown.to_string(), "shutdown");
        assert_eq!(
            RadioState::Tx(TxPowerLevel::Neg7).to_string(),
            "tx@-7.00 dBm"
        );
        assert_eq!(StateKind::Rx.to_string(), "rx");
    }
}
