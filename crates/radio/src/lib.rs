//! CC2420-class transceiver model.
//!
//! The paper's entire energy analysis rests on the characterization of one
//! radio (its Figure 3): four steady states, eight transmit power steps, and
//! the time/energy cost of switching between states. This crate captures
//! that characterization as data ([`RadioModel`], with the published
//! measurements as the [`RadioModel::cc2420`] preset), wraps it in a legal
//! state machine ([`machine::RadioStateMachine`]), and accounts every
//! microjoule in an [`ledger::EnergyLedger`] tagged by radio state and by
//! protocol phase — the raw material of the paper's Figure 9 breakdowns.
//!
//! Improvement perspectives from the paper's §5 are expressed as model
//! variants: [`RadioModelBuilder::transition_scale`] (faster state switches)
//! and [`RadioModelBuilder::rx_listen_power`] (a scalable receiver with a
//! low-power listen mode for CCA and acknowledgement waiting).
//!
//! # Example
//!
//! ```
//! use wsn_radio::{RadioModel, RadioState};
//!
//! let radio = RadioModel::cc2420();
//! let rx = radio.state_power(RadioState::Rx);
//! assert!((rx.milliwatts() - 35.28).abs() < 1e-9);
//!
//! let t = radio.transition(RadioState::Shutdown, RadioState::Idle).unwrap();
//! assert!((t.time.micros() - 970.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod machine;
mod model;
pub mod state;

pub use ledger::{EnergyLedger, PhaseTag};
pub use machine::{RadioStateMachine, TransitionError};
pub use model::{RadioModel, RadioModelBuilder, Transition};
pub use state::{RadioState, StateKind, TxPowerLevel};
