//! The radio's energy characterization: steady-state powers and state
//! transition costs (the paper's Figure 3 as data).

use wsn_units::{Current, Energy, Power, Seconds, Voltage};

use crate::state::{RadioState, TxPowerLevel};

/// Cost of switching between two radio states.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transition {
    /// Settling time before the target state is usable.
    pub time: Seconds,
    /// Energy consumed during the transition (the paper's worst case:
    /// settle time × target-state power).
    pub energy: Energy,
}

impl Transition {
    /// A free, instantaneous transition.
    pub const FREE: Transition = Transition {
        time: Seconds::ZERO,
        energy: Energy::ZERO,
    };

    /// Builds a transition using the paper's worst-case energy rule
    /// `E ≅ T(transition) × P(target state)`.
    pub fn worst_case(time: Seconds, target_power: Power) -> Self {
        Transition {
            time,
            energy: target_power * time,
        }
    }

    /// Scales both time and energy by `factor` (the paper's "reduce the
    /// transition time between states by a factor two" knob).
    pub fn scaled(self, factor: f64) -> Self {
        Transition {
            time: self.time * factor,
            energy: self.energy * factor,
        }
    }
}

/// A complete energy characterization of a CC2420-class transceiver.
///
/// Construct with [`RadioModel::cc2420`] for the paper's measured values, or
/// through [`RadioModel::builder`] for what-if variants.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RadioModel {
    vdd: Voltage,
    shutdown_power: Power,
    idle_power: Power,
    rx_power: Power,
    rx_listen_power: Power,
    tx_power: [Power; 8],
    shutdown_to_idle: Transition,
    idle_to_active: Transition,
    turnaround_time: Seconds,
}

impl RadioModel {
    /// The paper's Figure 3 characterization of the Chipcon CC2420 at
    /// 1.8 V:
    ///
    /// | state | current | power |
    /// |---|---|---|
    /// | shutdown | 80 nA | 144 nW |
    /// | idle | 396 µA | 712.8 µW |
    /// | RX | 19.6 mA | 35.28 mW |
    /// | TX 0 dBm | 17.04 mA | 30.67 mW |
    ///
    /// Transitions: shutdown→idle 970 µs / 691 nJ; idle→RX and idle→TX
    /// 194 µs / 6.63 µJ. (The paper's running text prints "691 pJ", but its
    /// own worst-case rule `T × I(idle) × VDD` gives 691 **nJ**; we keep the
    /// self-consistent value — see DESIGN.md §5.)
    pub fn cc2420() -> Self {
        RadioModel::builder().build()
    }

    /// Starts a builder pre-populated with the CC2420 values.
    pub fn builder() -> RadioModelBuilder {
        RadioModelBuilder::default()
    }

    /// Supply voltage of the characterization.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Steady-state power of `state`.
    pub fn state_power(&self, state: RadioState) -> Power {
        match state {
            RadioState::Shutdown => self.shutdown_power,
            RadioState::Idle => self.idle_power,
            RadioState::Rx => self.rx_power,
            RadioState::Tx(lvl) => self.tx_power[lvl as usize],
        }
    }

    /// Power of the receiver while merely *listening* (clear-channel
    /// assessment, acknowledgement wait). Equal to [`RadioState::Rx`] power
    /// on the stock CC2420; lower on the paper's proposed scalable receiver.
    pub fn rx_listen_power(&self) -> Power {
        self.rx_listen_power
    }

    /// Transmit power consumption at a given output level.
    pub fn tx_power(&self, level: TxPowerLevel) -> Power {
        self.tx_power[level as usize]
    }

    /// The cost of switching `from → to`, or `None` if the transition is
    /// not legal on this hardware (shutdown cannot reach RX/TX directly —
    /// the crystal must start in idle first).
    pub fn transition(&self, from: RadioState, to: RadioState) -> Option<Transition> {
        use RadioState::*;
        match (from, to) {
            // Staying put (or retuning the TX level) is free.
            (Shutdown, Shutdown) | (Idle, Idle) | (Rx, Rx) | (Tx(_), Tx(_)) => {
                Some(Transition::FREE)
            }
            (Shutdown, Idle) => Some(self.shutdown_to_idle),
            (Idle, Shutdown) => Some(Transition::FREE),
            (Idle, Rx) => Some(Transition {
                time: self.idle_to_active.time,
                energy: self.idle_to_active.energy,
            }),
            (Idle, Tx(_)) => Some(self.idle_to_active),
            (Rx, Idle) | (Tx(_), Idle) => Some(Transition::FREE),
            (Rx, Tx(lvl)) => Some(Transition::worst_case(
                self.turnaround_time,
                self.tx_power[lvl as usize],
            )),
            (Tx(_), Rx) => Some(Transition::worst_case(self.turnaround_time, self.rx_power)),
            (Shutdown, Rx) | (Shutdown, Tx(_)) | (Rx, Shutdown) | (Tx(_), Shutdown) => None,
        }
    }

    /// Settling time of the shutdown→idle wake-up (`T_si` ≈ 1 ms).
    pub fn wakeup_time(&self) -> Seconds {
        self.shutdown_to_idle.time
    }

    /// Settling time of the idle→RX/TX turn-on (`T_ia` = 194 µs).
    pub fn turn_on_time(&self) -> Seconds {
        self.idle_to_active.time
    }

    /// RX↔TX turnaround time (12 symbols = 192 µs).
    pub fn turnaround_time(&self) -> Seconds {
        self.turnaround_time
    }
}

/// Builder for [`RadioModel`] variants; defaults to the CC2420 preset.
///
/// # Examples
///
/// ```
/// use wsn_radio::{RadioModel, RadioState};
/// use wsn_units::Power;
///
/// // The paper's improvement (a): halve all transition times.
/// let faster = RadioModel::builder().transition_scale(0.5).build();
/// let t = faster
///     .transition(RadioState::Shutdown, RadioState::Idle)
///     .unwrap();
/// assert!((t.time.micros() - 485.0).abs() < 1e-9);
///
/// // Improvement (b): a scalable receiver listening at half power.
/// let scalable = RadioModel::builder()
///     .rx_listen_power(Power::from_milliwatts(17.64))
///     .build();
/// assert!(scalable.rx_listen_power() < scalable.state_power(RadioState::Rx));
/// ```
#[derive(Debug, Clone)]
pub struct RadioModelBuilder {
    vdd: Voltage,
    shutdown_current: Current,
    idle_current: Current,
    rx_current: Current,
    rx_listen_power: Option<Power>,
    shutdown_to_idle_time: Seconds,
    shutdown_to_idle_energy: Option<Energy>,
    idle_to_active_time: Seconds,
    idle_to_active_energy: Option<Energy>,
    turnaround_time: Seconds,
    transition_scale: f64,
}

impl Default for RadioModelBuilder {
    fn default() -> Self {
        RadioModelBuilder {
            vdd: Voltage::from_volts(1.8),
            shutdown_current: Current::from_nanoamps(80.0),
            idle_current: Current::from_microamps(396.0),
            rx_current: Current::from_milliamps(19.6),
            rx_listen_power: None,
            shutdown_to_idle_time: Seconds::from_micros(970.0),
            shutdown_to_idle_energy: None,
            idle_to_active_time: Seconds::from_micros(194.0),
            // The paper's measured value; the worst-case rule would give
            // 6.84 µJ (194 µs × 35.28 mW).
            idle_to_active_energy: Some(Energy::from_microjoules(6.63)),
            turnaround_time: Seconds::from_micros(192.0),
            transition_scale: 1.0,
        }
    }
}

impl RadioModelBuilder {
    /// Sets the supply voltage.
    pub fn vdd(mut self, vdd: Voltage) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the shutdown-state supply current.
    pub fn shutdown_current(mut self, i: Current) -> Self {
        self.shutdown_current = i;
        self
    }

    /// Sets the idle-state supply current.
    pub fn idle_current(mut self, i: Current) -> Self {
        self.idle_current = i;
        self
    }

    /// Sets the receive-state supply current.
    pub fn rx_current(mut self, i: Current) -> Self {
        self.rx_current = i;
        self
    }

    /// Sets a reduced receiver power for listen-only operation (clear
    /// channel assessment and acknowledgement wait) — the paper's scalable
    /// receiver improvement.
    pub fn rx_listen_power(mut self, p: Power) -> Self {
        self.rx_listen_power = Some(p);
        self
    }

    /// Scales every transition time and energy by `factor` (e.g. `0.5` for
    /// the paper's "reduce transition time by a factor two").
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn transition_scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "transition scale must be positive, got {factor}"
        );
        self.transition_scale = factor;
        self
    }

    /// Overrides the shutdown→idle transition time.
    pub fn wakeup_time(mut self, t: Seconds) -> Self {
        self.shutdown_to_idle_time = t;
        self
    }

    /// Overrides the idle→active transition time.
    pub fn turn_on_time(mut self, t: Seconds) -> Self {
        self.idle_to_active_time = t;
        self
    }

    /// Overrides the idle→active transition energy (otherwise the
    /// worst-case rule `T × P(target)` applies).
    pub fn turn_on_energy(mut self, e: Energy) -> Self {
        self.idle_to_active_energy = Some(e);
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> RadioModel {
        let idle_power = self.idle_current * self.vdd;
        let rx_power = self.rx_current * self.vdd;
        let tx_power = core::array::from_fn(|i| {
            let lvl = TxPowerLevel::ALL[i];
            lvl.supply_current() * self.vdd
        });

        let shutdown_to_idle = Transition {
            time: self.shutdown_to_idle_time,
            energy: self
                .shutdown_to_idle_energy
                .unwrap_or(idle_power * self.shutdown_to_idle_time),
        }
        .scaled(self.transition_scale);
        let idle_to_active = Transition {
            time: self.idle_to_active_time,
            energy: self
                .idle_to_active_energy
                .unwrap_or(rx_power * self.idle_to_active_time),
        }
        .scaled(self.transition_scale);

        RadioModel {
            vdd: self.vdd,
            shutdown_power: self.shutdown_current * self.vdd,
            idle_power,
            rx_power,
            rx_listen_power: self.rx_listen_power.unwrap_or(rx_power),
            tx_power,
            shutdown_to_idle,
            idle_to_active,
            turnaround_time: self.turnaround_time * self.transition_scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc2420_figure3_steady_states() {
        let r = RadioModel::cc2420();
        assert!((r.state_power(RadioState::Shutdown).nanowatts() - 144.0).abs() < 1e-9);
        assert!((r.state_power(RadioState::Idle).microwatts() - 712.8).abs() < 1e-9);
        assert!((r.state_power(RadioState::Rx).milliwatts() - 35.28).abs() < 1e-9);
        assert!(
            (r.state_power(RadioState::Tx(TxPowerLevel::Zero))
                .milliwatts()
                - 30.672)
                .abs()
                < 1e-9
        );
        assert!(
            (r.state_power(RadioState::Tx(TxPowerLevel::Neg25))
                .milliwatts()
                - 15.156)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn cc2420_figure3_transitions() {
        let r = RadioModel::cc2420();
        let si = r
            .transition(RadioState::Shutdown, RadioState::Idle)
            .unwrap();
        assert!((si.time.micros() - 970.0).abs() < 1e-9);
        // Worst-case rule: 970 µs × 712.8 µW = 691.4 nJ.
        assert!((si.energy.nanojoules() - 691.416).abs() < 1e-3);

        let ia = r.transition(RadioState::Idle, RadioState::Rx).unwrap();
        assert!((ia.time.micros() - 194.0).abs() < 1e-9);
        assert!((ia.energy.microjoules() - 6.63).abs() < 1e-9);

        let it = r
            .transition(RadioState::Idle, RadioState::Tx(TxPowerLevel::Zero))
            .unwrap();
        assert_eq!(it, ia, "idle→TX should mirror idle→RX per Figure 3");
    }

    #[test]
    fn returning_to_idle_is_free_and_same_state_is_free() {
        let r = RadioModel::cc2420();
        assert_eq!(
            r.transition(RadioState::Rx, RadioState::Idle).unwrap(),
            Transition::FREE
        );
        assert_eq!(
            r.transition(RadioState::Idle, RadioState::Idle).unwrap(),
            Transition::FREE
        );
        assert_eq!(
            r.transition(RadioState::Idle, RadioState::Shutdown)
                .unwrap(),
            Transition::FREE
        );
        assert_eq!(
            r.transition(
                RadioState::Tx(TxPowerLevel::Neg5),
                RadioState::Tx(TxPowerLevel::Zero)
            )
            .unwrap(),
            Transition::FREE
        );
    }

    #[test]
    fn shutdown_cannot_reach_active_states_directly() {
        let r = RadioModel::cc2420();
        assert!(r.transition(RadioState::Shutdown, RadioState::Rx).is_none());
        assert!(r
            .transition(RadioState::Shutdown, RadioState::Tx(TxPowerLevel::Zero))
            .is_none());
        assert!(r.transition(RadioState::Rx, RadioState::Shutdown).is_none());
    }

    #[test]
    fn turnaround_costs_twelve_symbols() {
        let r = RadioModel::cc2420();
        let ta = r
            .transition(RadioState::Rx, RadioState::Tx(TxPowerLevel::Zero))
            .unwrap();
        assert!((ta.time.micros() - 192.0).abs() < 1e-9);
        // Energy at target (TX 0 dBm) power.
        assert!((ta.energy.microjoules() - 0.192 * 30.672).abs() < 1e-6);
    }

    #[test]
    fn transition_scale_halves_everything() {
        let fast = RadioModel::builder().transition_scale(0.5).build();
        let si = fast
            .transition(RadioState::Shutdown, RadioState::Idle)
            .unwrap();
        assert!((si.time.micros() - 485.0).abs() < 1e-9);
        assert!((si.energy.nanojoules() - 691.416 / 2.0).abs() < 1e-3);
        let ia = fast.transition(RadioState::Idle, RadioState::Rx).unwrap();
        assert!((ia.energy.microjoules() - 3.315).abs() < 1e-9);
        assert!((fast.turnaround_time().micros() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn rx_listen_power_defaults_to_rx() {
        let stock = RadioModel::cc2420();
        assert_eq!(stock.rx_listen_power(), stock.state_power(RadioState::Rx));
        let scalable = RadioModel::builder()
            .rx_listen_power(Power::from_milliwatts(10.0))
            .build();
        assert!((scalable.rx_listen_power().milliwatts() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "transition scale must be positive")]
    fn zero_scale_rejected() {
        let _ = RadioModel::builder().transition_scale(0.0);
    }

    #[test]
    fn custom_voltage_scales_powers() {
        let r = RadioModel::builder().vdd(Voltage::from_volts(3.0)).build();
        assert!((r.state_power(RadioState::Rx).milliwatts() - 58.8).abs() < 1e-9);
    }
}
