//! Energy accounting: time and energy per radio state and per protocol
//! phase.
//!
//! The paper's Figure 9 presents two views of the same consumption: (a)
//! energy split by *protocol phase* (beacon, contention, transmit,
//! ACK + IFS) and (b) time split by *radio state* (shutdown, idle, TX, RX).
//! [`EnergyLedger`] maintains both simultaneously so that a single
//! simulation or model evaluation can emit both charts, and so that their
//! totals can be cross-checked against each other (they must agree — a
//! conservation test).

use core::fmt;

use wsn_units::{Energy, Power, Seconds};

use crate::model::RadioModel;
use crate::state::{RadioState, StateKind};

/// Protocol phase labels for energy attribution (paper Figure 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PhaseTag {
    /// Inter-superframe sleep.
    Sleep,
    /// Pre-beacon wake-up and beacon reception.
    Beacon,
    /// Slotted CSMA/CA: backoff waiting and clear channel assessments.
    Contention,
    /// Uplink packet transmission.
    Transmit,
    /// Acknowledgement turnaround and wait.
    AckWait,
    /// Inter-frame spacing.
    Ifs,
    /// Guaranteed time slot traffic: contention-free uplink transmissions
    /// in the superframe's CFP.
    Gts,
    /// Indirect (downlink) traffic: data-request polling, downlink frame
    /// reception and its acknowledgement.
    Downlink,
    /// Association maintenance: orphan-scan listening after missed
    /// beacons and the association request/response exchange on rejoin.
    Association,
    /// Anything else (diagnostics, …).
    Other,
}

/// Number of distinct [`PhaseTag`]s (the ledger's phase-axis length).
pub const PHASE_COUNT: usize = 10;

impl PhaseTag {
    /// All phases in display order.
    pub const ALL: [PhaseTag; PHASE_COUNT] = [
        PhaseTag::Sleep,
        PhaseTag::Beacon,
        PhaseTag::Contention,
        PhaseTag::Transmit,
        PhaseTag::AckWait,
        PhaseTag::Ifs,
        PhaseTag::Gts,
        PhaseTag::Downlink,
        PhaseTag::Association,
        PhaseTag::Other,
    ];

    fn index(self) -> usize {
        match self {
            PhaseTag::Sleep => 0,
            PhaseTag::Beacon => 1,
            PhaseTag::Contention => 2,
            PhaseTag::Transmit => 3,
            PhaseTag::AckWait => 4,
            PhaseTag::Ifs => 5,
            PhaseTag::Gts => 6,
            PhaseTag::Downlink => 7,
            PhaseTag::Association => 8,
            PhaseTag::Other => 9,
        }
    }
}

impl fmt::Display for PhaseTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseTag::Sleep => "sleep",
            PhaseTag::Beacon => "beacon",
            PhaseTag::Contention => "contention",
            PhaseTag::Transmit => "transmit",
            PhaseTag::AckWait => "ack",
            PhaseTag::Ifs => "ifs",
            PhaseTag::Gts => "gts",
            PhaseTag::Downlink => "downlink",
            PhaseTag::Association => "association",
            PhaseTag::Other => "other",
        };
        f.write_str(s)
    }
}

fn state_index(kind: StateKind) -> usize {
    match kind {
        StateKind::Shutdown => 0,
        StateKind::Idle => 1,
        StateKind::Rx => 2,
        StateKind::Tx => 3,
    }
}

/// Double-entry time/energy ledger: per radio state and per protocol phase.
///
/// # Examples
///
/// ```
/// use wsn_radio::{EnergyLedger, PhaseTag, RadioModel, RadioState};
/// use wsn_units::Seconds;
///
/// let radio = RadioModel::cc2420();
/// let mut ledger = EnergyLedger::new();
/// ledger.accrue(&radio, RadioState::Rx, PhaseTag::Beacon, Seconds::from_micros(608.0));
/// let fractions = ledger.phase_energy_fractions();
/// assert!((fractions[1].1 - 1.0).abs() < 1e-12); // all energy in Beacon
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyLedger {
    state_time: [Seconds; 4],
    state_energy: [Energy; 4],
    phase_time: [Seconds; PHASE_COUNT],
    phase_energy: [Energy; PHASE_COUNT],
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Records `duration` spent with energy `energy` in state `kind`,
    /// attributed to `phase`.
    ///
    /// Prefer the higher-level [`accrue`](Self::accrue) /
    /// [`accrue_transition`](Self::accrue_transition) helpers; this raw
    /// entry point exists for custom power profiles (e.g. the scalable
    /// receiver's listen mode).
    ///
    /// # Panics
    ///
    /// Panics if `duration` or `energy` is negative.
    pub fn record(&mut self, kind: StateKind, phase: PhaseTag, duration: Seconds, energy: Energy) {
        assert!(duration.secs() >= 0.0, "negative duration");
        assert!(energy.joules() >= 0.0, "negative energy");
        self.state_time[state_index(kind)] += duration;
        self.state_energy[state_index(kind)] += energy;
        self.phase_time[phase.index()] += duration;
        self.phase_energy[phase.index()] += energy;
    }

    /// Bills `duration` at the steady-state power of `state`.
    pub fn accrue(
        &mut self,
        model: &RadioModel,
        state: RadioState,
        phase: PhaseTag,
        duration: Seconds,
    ) {
        let energy = model.state_power(state) * duration;
        self.record(state.kind(), phase, duration, energy);
    }

    /// Bills `duration` of receiver *listening* (CCA or ACK-wait) at the
    /// model's listen power — distinct from [`accrue`](Self::accrue) with
    /// [`RadioState::Rx`] only when a scalable receiver is configured.
    pub fn accrue_listen(&mut self, model: &RadioModel, phase: PhaseTag, duration: Seconds) {
        let energy = model.rx_listen_power() * duration;
        self.record(StateKind::Rx, phase, duration, energy);
    }

    /// Bills a state transition: the settle time is attributed to the
    /// *target* state (the paper counts `T_ia` as RX/TX time and `T_si` as
    /// idle time) and the transition energy to `phase`. Returns the
    /// transition, or `None` if illegal.
    pub fn accrue_transition(
        &mut self,
        model: &RadioModel,
        from: RadioState,
        to: RadioState,
        phase: PhaseTag,
    ) -> Option<crate::model::Transition> {
        let t = model.transition(from, to)?;
        self.record(to.kind(), phase, t.time, t.energy);
        Some(t)
    }

    /// Total time across all states.
    pub fn total_time(&self) -> Seconds {
        self.state_time.iter().copied().sum()
    }

    /// Total energy across all states.
    pub fn total_energy(&self) -> Energy {
        self.state_energy.iter().copied().sum()
    }

    /// Time spent in a state kind.
    pub fn time_in(&self, kind: StateKind) -> Seconds {
        self.state_time[state_index(kind)]
    }

    /// Energy spent in a state kind.
    pub fn energy_in(&self, kind: StateKind) -> Energy {
        self.state_energy[state_index(kind)]
    }

    /// Time attributed to a phase.
    pub fn time_in_phase(&self, phase: PhaseTag) -> Seconds {
        self.phase_time[phase.index()]
    }

    /// Energy attributed to a phase.
    pub fn energy_in_phase(&self, phase: PhaseTag) -> Energy {
        self.phase_energy[phase.index()]
    }

    /// Average power over a reference window (e.g. the inter-beacon
    /// period), `total energy / window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive.
    pub fn average_power(&self, window: Seconds) -> Power {
        assert!(window.secs() > 0.0, "window must be positive");
        self.total_energy() / window
    }

    /// `(state, fraction-of-total-time)` for all four states — Figure 9b.
    pub fn state_time_fractions(&self) -> [(StateKind, f64); 4] {
        let total = self.total_time().secs();
        core::array::from_fn(|i| {
            let kind = StateKind::ALL[i];
            let frac = if total > 0.0 {
                self.time_in(kind).secs() / total
            } else {
                0.0
            };
            (kind, frac)
        })
    }

    /// `(phase, fraction-of-total-energy)` for all phases — Figure 9a.
    pub fn phase_energy_fractions(&self) -> [(PhaseTag, f64); PHASE_COUNT] {
        let total = self.total_energy().joules();
        core::array::from_fn(|i| {
            let phase = PhaseTag::ALL[i];
            let frac = if total > 0.0 {
                self.energy_in_phase(phase).joules() / total
            } else {
                0.0
            };
            (phase, frac)
        })
    }

    /// Folds another ledger into this one (aggregating nodes).
    ///
    /// Componentwise addition, so the merge is exact and
    /// order-insensitive up to floating-point rounding: per-node ledgers
    /// combine into per-channel ledgers and per-channel ledgers into
    /// population ledgers. The simulator's sharded accumulators rely on
    /// this — merging shards in a fixed order keeps parallel reductions
    /// bit-identical to the serial fold.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for i in 0..4 {
            self.state_time[i] += other.state_time[i];
            self.state_energy[i] += other.state_energy[i];
        }
        for i in 0..PHASE_COUNT {
            self.phase_time[i] += other.phase_time[i];
            self.phase_energy[i] += other.phase_energy[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TxPowerLevel;

    fn radio() -> RadioModel {
        RadioModel::cc2420()
    }

    #[test]
    fn accrue_bills_state_power() {
        let mut l = EnergyLedger::new();
        l.accrue(
            &radio(),
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_millis(1.0),
        );
        assert!((l.total_energy().microjoules() - 35.28).abs() < 1e-9);
        assert!((l.time_in(StateKind::Rx).millis() - 1.0).abs() < 1e-12);
        assert!((l.energy_in_phase(PhaseTag::Beacon).microjoules() - 35.28).abs() < 1e-9);
    }

    #[test]
    fn dual_views_always_agree() {
        let mut l = EnergyLedger::new();
        let r = radio();
        l.accrue(
            &r,
            RadioState::Shutdown,
            PhaseTag::Sleep,
            Seconds::from_millis(970.0),
        );
        l.accrue(
            &r,
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_micros(608.0),
        );
        l.accrue(
            &r,
            RadioState::Idle,
            PhaseTag::Contention,
            Seconds::from_millis(3.0),
        );
        l.accrue(
            &r,
            RadioState::Tx(TxPowerLevel::Neg5),
            PhaseTag::Transmit,
            Seconds::from_millis(4.256),
        );
        l.accrue_transition(&r, RadioState::Idle, RadioState::Rx, PhaseTag::Contention);

        let by_state: Energy = StateKind::ALL.iter().map(|&k| l.energy_in(k)).sum();
        let by_phase: Energy = PhaseTag::ALL.iter().map(|&p| l.energy_in_phase(p)).sum();
        assert!((by_state.joules() - by_phase.joules()).abs() < 1e-18);
        assert!((by_state.joules() - l.total_energy().joules()).abs() < 1e-18);

        let t_state: Seconds = StateKind::ALL.iter().map(|&k| l.time_in(k)).sum();
        let t_phase: Seconds = PhaseTag::ALL.iter().map(|&p| l.time_in_phase(p)).sum();
        assert!((t_state.secs() - t_phase.secs()).abs() < 1e-15);
    }

    #[test]
    fn transition_time_billed_to_target_state() {
        let mut l = EnergyLedger::new();
        let t = l
            .accrue_transition(
                &radio(),
                RadioState::Idle,
                RadioState::Rx,
                PhaseTag::Contention,
            )
            .unwrap();
        assert!((t.time.micros() - 194.0).abs() < 1e-9);
        assert!((l.time_in(StateKind::Rx).micros() - 194.0).abs() < 1e-9);
        assert_eq!(l.time_in(StateKind::Idle), Seconds::ZERO);
        assert!((l.energy_in_phase(PhaseTag::Contention).microjoules() - 6.63).abs() < 1e-9);
    }

    #[test]
    fn illegal_transition_returns_none_and_records_nothing() {
        let mut l = EnergyLedger::new();
        assert!(l
            .accrue_transition(
                &radio(),
                RadioState::Shutdown,
                RadioState::Rx,
                PhaseTag::Other
            )
            .is_none());
        assert_eq!(l.total_energy(), Energy::ZERO);
    }

    #[test]
    fn listen_mode_uses_listen_power() {
        let scalable = RadioModel::builder()
            .rx_listen_power(Power::from_milliwatts(17.64))
            .build();
        let mut l = EnergyLedger::new();
        l.accrue_listen(&scalable, PhaseTag::AckWait, Seconds::from_millis(1.0));
        assert!((l.total_energy().microjoules() - 17.64).abs() < 1e-9);
        // Time is still RX time.
        assert!((l.time_in(StateKind::Rx).millis() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_over_window() {
        let mut l = EnergyLedger::new();
        l.accrue(
            &radio(),
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_millis(1.0),
        );
        // 35.28 µJ over 983.04 ms ≈ 35.9 µW.
        let p = l.average_power(Seconds::from_millis(983.04));
        assert!((p.microwatts() - 35.89).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let l = EnergyLedger::new();
        let _ = l.average_power(Seconds::ZERO);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut l = EnergyLedger::new();
        let r = radio();
        l.accrue(
            &r,
            RadioState::Shutdown,
            PhaseTag::Sleep,
            Seconds::from_secs(0.97),
        );
        l.accrue(
            &r,
            RadioState::Idle,
            PhaseTag::Contention,
            Seconds::from_millis(4.0),
        );
        l.accrue(
            &r,
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_millis(1.0),
        );
        let t: f64 = l.state_time_fractions().iter().map(|(_, f)| f).sum();
        let e: f64 = l.phase_energy_fractions().iter().map(|(_, f)| f).sum();
        assert!((t - 1.0).abs() < 1e-12);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let r = radio();
        let mut a = EnergyLedger::new();
        a.accrue(
            &r,
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_millis(1.0),
        );
        let mut b = EnergyLedger::new();
        b.accrue(
            &r,
            RadioState::Rx,
            PhaseTag::Beacon,
            Seconds::from_millis(2.0),
        );
        a.merge(&b);
        assert!((a.time_in(StateKind::Rx).millis() - 3.0).abs() < 1e-12);
        assert!((a.total_energy().microjoules() - 3.0 * 35.28).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_rejected() {
        let mut l = EnergyLedger::new();
        l.record(
            StateKind::Idle,
            PhaseTag::Other,
            Seconds::from_secs(-1.0),
            Energy::ZERO,
        );
    }
}
