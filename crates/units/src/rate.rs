//! Data rate and frequency quantities.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::Seconds;

/// A data rate, stored internally in bits per second.
///
/// # Examples
///
/// ```
/// use wsn_units::DataRate;
///
/// // The 802.15.4 2.45 GHz PHY gross rate:
/// let rate = DataRate::from_kbps(250.0);
/// // Time to move one byte:
/// assert!((rate.time_per_bits(8.0).micros() - 32.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataRate(f64);

impl DataRate {
    /// Creates a rate from bits per second.
    #[inline]
    pub const fn from_bps(bps: f64) -> Self {
        DataRate(bps)
    }

    /// Creates a rate from kilobits per second.
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        DataRate(kbps * 1e3)
    }

    /// Creates a rate from megabits per second.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        DataRate(mbps * 1e6)
    }

    /// Returns the value in bits per second.
    #[inline]
    pub const fn bps(self) -> f64 {
        self.0
    }

    /// Returns the value in kilobits per second.
    #[inline]
    pub fn kbps(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the time needed to transfer `bits` bits at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    #[inline]
    pub fn time_per_bits(self, bits: f64) -> Seconds {
        assert!(self.0 > 0.0, "rate must be positive, got {} bps", self.0);
        Seconds::from_secs(bits / self.0)
    }

    /// Returns the number of bits transferred in `t` at this rate.
    #[inline]
    pub fn bits_in(self, t: Seconds) -> f64 {
        self.0 * t.secs()
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.3} Mb/s", self.0 * 1e-6)
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.3} kb/s", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} b/s", self.0)
        }
    }
}

impl Add for DataRate {
    type Output = DataRate;
    #[inline]
    fn add(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 + rhs.0)
    }
}

impl Sub for DataRate {
    type Output = DataRate;
    #[inline]
    fn sub(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 - rhs.0)
    }
}

impl Mul<f64> for DataRate {
    type Output = DataRate;
    #[inline]
    fn mul(self, rhs: f64) -> DataRate {
        DataRate(self.0 * rhs)
    }
}

impl Div<f64> for DataRate {
    type Output = DataRate;
    #[inline]
    fn div(self, rhs: f64) -> DataRate {
        DataRate(self.0 / rhs)
    }
}

impl Div<DataRate> for DataRate {
    type Output = f64;
    #[inline]
    fn div(self, rhs: DataRate) -> f64 {
        self.0 / rhs.0
    }
}

/// A frequency, stored internally in hertz.
///
/// # Examples
///
/// ```
/// use wsn_units::Frequency;
///
/// let ch11 = Frequency::from_mhz(2405.0);
/// assert!((ch11.ghz() - 2.405).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    #[inline]
    pub const fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from kilohertz.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Frequency(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// Returns the value in hertz.
    #[inline]
    pub const fn hz(self) -> f64 {
        self.0
    }

    /// Returns the value in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the wavelength in meters (c / f).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    #[inline]
    pub fn wavelength_m(self) -> f64 {
        assert!(self.0 > 0.0, "frequency must be positive");
        299_792_458.0 / self.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e9 {
            write!(f, "{:.4} GHz", self.0 * 1e-9)
        } else if self.0.abs() >= 1e6 {
            write!(f, "{:.3} MHz", self.0 * 1e-6)
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.3} kHz", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_period_at_250kbps() {
        let t_b = DataRate::from_kbps(250.0).time_per_bits(8.0);
        assert!((t_b.micros() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn bits_in_superframe() {
        // 983.04 ms at 250 kb/s is 245 760 bits, the paper's per-channel
        // capacity per superframe at BO = 6.
        let bits = DataRate::from_kbps(250.0).bits_in(Seconds::from_millis(983.04));
        assert!((bits - 245_760.0).abs() < 1e-6);
    }

    #[test]
    fn rate_arithmetic() {
        let r = DataRate::from_kbps(100.0);
        assert!(((r * 2.0).kbps() - 200.0).abs() < 1e-9);
        assert!(((r / 2.0).kbps() - 50.0).abs() < 1e-9);
        assert!((r / DataRate::from_kbps(250.0) - 0.4).abs() < 1e-12);
        assert!(((r + r).kbps() - 200.0).abs() < 1e-9);
        assert!(((r - r).kbps() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_scales() {
        let f = Frequency::from_ghz(2.45);
        assert!((f.mhz() - 2450.0).abs() < 1e-9);
        assert!((f.hz() - 2.45e9).abs() < 1.0);
        assert!((Frequency::from_khz(868_300.0).mhz() - 868.3).abs() < 1e-9);
    }

    #[test]
    fn wavelength() {
        let f = Frequency::from_ghz(2.45);
        assert!((f.wavelength_m() - 0.1224).abs() < 1e-3);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", DataRate::from_kbps(250.0)), "250.000 kb/s");
        assert_eq!(format!("{}", DataRate::from_mbps(2.0)), "2.000 Mb/s");
        assert_eq!(format!("{}", Frequency::from_mhz(2450.0)), "2.4500 GHz");
        assert_eq!(format!("{}", Frequency::from_mhz(868.0)), "868.000 MHz");
    }
}
