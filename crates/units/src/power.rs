//! Linear power quantity.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::{DBm, Energy, Seconds};

/// A power quantity, stored internally in watts.
///
/// `Power` is the linear-domain counterpart of [`DBm`]. It supports the
/// dimensional arithmetic used throughout the energy model:
/// `Power × Seconds = Energy` and scalar scaling.
///
/// # Examples
///
/// ```
/// use wsn_units::{Power, Seconds};
///
/// let idle = Power::from_microwatts(712.0);
/// let energy = idle * Seconds::from_millis(1.0);
/// assert!((energy.nanojoules() - 712.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    #[inline]
    pub const fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[inline]
    pub fn from_nanowatts(nw: f64) -> Self {
        Power(nw * 1e-9)
    }

    /// Returns the value in watts.
    #[inline]
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microwatts.
    #[inline]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanowatts.
    #[inline]
    pub fn nanowatts(self) -> f64 {
        self.0 * 1e9
    }

    /// Converts to the logarithmic domain.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive (the logarithm of a
    /// non-positive power is undefined).
    #[inline]
    pub fn to_dbm(self) -> DBm {
        assert!(
            self.0 > 0.0,
            "cannot express non-positive power {} W in dBm",
            self.0
        );
        DBm::new(10.0 * (self.0 * 1e3).log10())
    }

    /// Returns `true` if the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two powers.
    #[inline]
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Returns the larger of two powers.
    #[inline]
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0.abs();
        if w >= 1.0 {
            write!(f, "{:.4} W", self.0)
        } else if w >= 1e-3 {
            write!(f, "{:.4} mW", self.0 * 1e3)
        } else if w >= 1e-6 {
            write!(f, "{:.4} µW", self.0 * 1e6)
        } else {
            write!(f, "{:.4} nW", self.0 * 1e9)
        }
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    #[inline]
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    #[inline]
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl SubAssign for Power {
    #[inline]
    fn sub_assign(&mut self, rhs: Power) {
        self.0 -= rhs.0;
    }
}

impl Neg for Power {
    type Output = Power;
    #[inline]
    fn neg(self) -> Power {
        Power(-self.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    #[inline]
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Div<Power> for Power {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Seconds> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Seconds) -> Energy {
        Energy::from_joules(self.0 * rhs.secs())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_scaling_roundtrips() {
        let p = Power::from_microwatts(712.0);
        assert!((p.watts() - 712e-6).abs() < 1e-15);
        assert!((p.milliwatts() - 0.712).abs() < 1e-12);
        assert!((p.nanowatts() - 712_000.0).abs() < 1e-6);
    }

    #[test]
    fn dbm_conversion_matches_reference_points() {
        // 1 mW == 0 dBm by definition.
        assert!((Power::from_milliwatts(1.0).to_dbm().dbm() - 0.0).abs() < 1e-12);
        // 35.28 mW (CC2420 RX) is about +15.47 dBm.
        let rx = Power::from_milliwatts(35.28);
        assert!((rx.to_dbm().dbm() - 15.475).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "cannot express non-positive power")]
    fn dbm_of_zero_power_panics() {
        let _ = Power::ZERO.to_dbm();
    }

    #[test]
    fn arithmetic_is_linear() {
        let a = Power::from_milliwatts(2.0);
        let b = Power::from_milliwatts(3.0);
        assert_eq!((a + b).milliwatts().round(), 5.0);
        assert_eq!((b - a).milliwatts().round(), 1.0);
        assert_eq!((a * 2.0).milliwatts().round(), 4.0);
        assert_eq!((2.0 * a).milliwatts().round(), 4.0);
        assert_eq!((b / 3.0).milliwatts().round(), 1.0);
        assert!((b / a - 1.5).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_milliwatts(35.28) * Seconds::from_micros(194.0);
        assert!((e.microjoules() - 6.84432).abs() < 1e-9);
    }

    #[test]
    fn sum_accumulates() {
        let total: Power = (1..=4).map(|i| Power::from_milliwatts(i as f64)).sum();
        assert!((total.milliwatts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Power::from_watts(1.5)), "1.5000 W");
        assert_eq!(format!("{}", Power::from_milliwatts(35.28)), "35.2800 mW");
        assert_eq!(format!("{}", Power::from_microwatts(712.0)), "712.0000 µW");
        assert_eq!(format!("{}", Power::from_nanowatts(144.0)), "144.0000 nW");
    }

    #[test]
    fn min_max() {
        let a = Power::from_watts(1.0);
        let b = Power::from_watts(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
