//! Validated probability newtype.

use core::fmt;
use core::ops::Mul;

/// Error returned when constructing a [`Probability`] from a value outside
/// `[0, 1]` or from a non-finite value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError(f64);

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a probability in [0, 1]", self.0)
    }
}

impl std::error::Error for ProbabilityError {}

/// A probability, guaranteed to lie in `[0, 1]`.
///
/// The analytical model of the paper composes many probabilities (bit error,
/// packet error, collision, channel-access failure, …); this newtype keeps
/// the compositions honest. Multiplication of two probabilities models the
/// joint probability of *independent* events — which is exactly the
/// independence assumption the paper's equations (9), (10) and (13) make.
///
/// # Examples
///
/// ```
/// use wsn_units::Probability;
///
/// let pr_col = Probability::new(0.1)?;
/// let pr_e = Probability::new(0.05)?;
/// // Paper eq. (9): Pr_tf = 1 − (1 − Pr_col)(1 − Pr_e)
/// let pr_tf = (pr_col.complement() * pr_e.complement()).complement();
/// assert!((pr_tf.value() - 0.145).abs() < 1e-12);
/// # Ok::<(), wsn_units::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Probability(f64);

impl Probability {
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] if `p` is NaN, infinite, or outside
    /// `[0, 1]`.
    #[inline]
    pub fn new(p: f64) -> Result<Self, ProbabilityError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Probability(p))
        } else {
            Err(ProbabilityError(p))
        }
    }

    /// Creates a probability, clamping out-of-range finite values into
    /// `[0, 1]`.
    ///
    /// Useful at the boundary with floating-point formulas that may
    /// produce `1.0 + ε` through rounding.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    #[inline]
    pub fn clamped(p: f64) -> Self {
        assert!(!p.is_nan(), "probability must not be NaN");
        Probability(p.clamp(0.0, 1.0))
    }

    /// Returns the raw value in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `1 − p`, the probability of the complementary event.
    #[inline]
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// Returns `pⁿ`, the probability that `n` independent trials all succeed.
    #[inline]
    pub fn pow(self, n: u32) -> Probability {
        Probability(self.0.powi(n as i32))
    }

    /// Returns `pˣ` for a real-valued exponent `x ≥ 0`.
    ///
    /// Used by the packet-error formula `(1 − Pr_bit)^(8·(L−4))` when the
    /// exponent is computed rather than constant.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative (the result could exceed 1).
    #[inline]
    pub fn powf(self, x: f64) -> Probability {
        assert!(x >= 0.0, "exponent must be non-negative, got {x}");
        Probability(self.0.powf(x))
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl Mul for Probability {
    type Output = Probability;
    #[inline]
    fn mul(self, rhs: Probability) -> Probability {
        Probability(self.0 * rhs.0)
    }
}

impl From<Probability> for f64 {
    #[inline]
    fn from(p: Probability) -> f64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_unit_interval() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(1.0).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Probability::clamped(1.0 + 1e-12).value(), 1.0);
        assert_eq!(Probability::clamped(-1e-12).value(), 0.0);
        assert_eq!(Probability::clamped(0.3).value(), 0.3);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn clamped_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn complement_involution() {
        let p = Probability::new(0.37).unwrap();
        assert!((p.complement().complement().value() - 0.37).abs() < 1e-15);
    }

    #[test]
    fn independent_joint() {
        let p = Probability::new(0.5).unwrap() * Probability::new(0.5).unwrap();
        assert_eq!(p.value(), 0.25);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let p = Probability::new(0.9).unwrap();
        let three = p * p * p;
        assert!((p.pow(3).value() - three.value()).abs() < 1e-15);
        assert_eq!(p.pow(0).value(), 1.0);
    }

    #[test]
    fn powf_packet_error_formula() {
        // Pr_e = 1 − (1 − Pr_bit)^(8·(133−4)) at Pr_bit = 1e-4.
        let pr_bit = Probability::new(1e-4).unwrap();
        let pr_e = pr_bit.complement().powf(8.0 * 129.0).complement();
        assert!((pr_e.value() - 0.0981).abs() < 1e-3);
    }

    #[test]
    fn error_displays_value() {
        let err = Probability::new(1.5).unwrap_err();
        assert_eq!(err.to_string(), "value 1.5 is not a probability in [0, 1]");
    }
}
