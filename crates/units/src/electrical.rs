//! Electrical quantities: current and voltage.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::Power;

/// An electrical current, stored internally in amperes.
///
/// The CC2420 data sheet and the paper's Figure 3 specify radio states by
/// supply current at 1.8 V; `Current × Voltage = Power` converts these to the
/// powers the energy model needs.
///
/// # Examples
///
/// ```
/// use wsn_units::{Current, Voltage};
///
/// let shutdown = Current::from_nanoamps(80.0) * Voltage::from_volts(1.8);
/// assert!((shutdown.nanowatts() - 144.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Current(f64);

impl Current {
    /// Zero current.
    pub const ZERO: Current = Current(0.0);

    /// Creates a current from amperes.
    #[inline]
    pub const fn from_amps(a: f64) -> Self {
        Current(a)
    }

    /// Creates a current from milliamperes.
    #[inline]
    pub fn from_milliamps(ma: f64) -> Self {
        Current(ma * 1e-3)
    }

    /// Creates a current from microamperes.
    #[inline]
    pub fn from_microamps(ua: f64) -> Self {
        Current(ua * 1e-6)
    }

    /// Creates a current from nanoamperes.
    #[inline]
    pub fn from_nanoamps(na: f64) -> Self {
        Current(na * 1e-9)
    }

    /// Returns the value in amperes.
    #[inline]
    pub const fn amps(self) -> f64 {
        self.0
    }

    /// Returns the value in milliamperes.
    #[inline]
    pub fn milliamps(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microamperes.
    #[inline]
    pub fn microamps(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanoamperes.
    #[inline]
    pub fn nanoamps(self) -> f64 {
        self.0 * 1e9
    }
}

impl fmt::Display for Current {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0.abs();
        if a >= 1.0 {
            write!(f, "{:.4} A", self.0)
        } else if a >= 1e-3 {
            write!(f, "{:.4} mA", self.0 * 1e3)
        } else if a >= 1e-6 {
            write!(f, "{:.4} µA", self.0 * 1e6)
        } else {
            write!(f, "{:.4} nA", self.0 * 1e9)
        }
    }
}

impl Add for Current {
    type Output = Current;
    #[inline]
    fn add(self, rhs: Current) -> Current {
        Current(self.0 + rhs.0)
    }
}

impl Sub for Current {
    type Output = Current;
    #[inline]
    fn sub(self, rhs: Current) -> Current {
        Current(self.0 - rhs.0)
    }
}

impl Mul<f64> for Current {
    type Output = Current;
    #[inline]
    fn mul(self, rhs: f64) -> Current {
        Current(self.0 * rhs)
    }
}

impl Div<f64> for Current {
    type Output = Current;
    #[inline]
    fn div(self, rhs: f64) -> Current {
        Current(self.0 / rhs)
    }
}

impl Mul<Voltage> for Current {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Voltage) -> Power {
        Power::from_watts(self.0 * rhs.volts())
    }
}

/// An electrical potential, stored internally in volts.
///
/// See [`Current`] for the `I × V = P` conversion.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage from volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Voltage(v)
    }

    /// Creates a voltage from millivolts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Voltage(mv * 1e-3)
    }

    /// Returns the value in volts.
    #[inline]
    pub const fn volts(self) -> f64 {
        self.0
    }

    /// Returns the value in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Current) -> Power {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: Voltage = Voltage::from_volts(1.8);

    #[test]
    fn figure3_state_powers_from_currents() {
        // All four CC2420 steady-state powers from the paper's Figure 3.
        let shutdown = Current::from_nanoamps(80.0) * VDD;
        assert!((shutdown.nanowatts() - 144.0).abs() < 1e-9);

        let idle = Current::from_microamps(396.0) * VDD;
        assert!((idle.microwatts() - 712.8).abs() < 1e-9);

        let rx = Current::from_milliamps(19.6) * VDD;
        assert!((rx.milliwatts() - 35.28).abs() < 1e-9);

        let tx0 = Current::from_milliamps(17.04) * VDD;
        assert!((tx0.milliwatts() - 30.672).abs() < 1e-9);
    }

    #[test]
    fn commutative_power_product() {
        let a = Current::from_milliamps(10.0) * Voltage::from_volts(1.8);
        let b = Voltage::from_volts(1.8) * Current::from_milliamps(10.0);
        assert_eq!(a, b);
    }

    #[test]
    fn current_scaling() {
        let i = Current::from_milliamps(19.6);
        assert!((i.amps() - 0.0196).abs() < 1e-12);
        assert!((i.microamps() - 19600.0).abs() < 1e-6);
        assert!((Current::from_amps(1.0).milliamps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn current_arithmetic() {
        let a = Current::from_milliamps(2.0);
        let b = Current::from_milliamps(3.0);
        assert!(((a + b).milliamps() - 5.0).abs() < 1e-12);
        assert!(((b - a).milliamps() - 1.0).abs() < 1e-12);
        assert!(((a * 2.0).milliamps() - 4.0).abs() < 1e-12);
        assert!(((b / 3.0).milliamps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_accessors() {
        assert!((Voltage::from_millivolts(1800.0).volts() - 1.8).abs() < 1e-12);
        assert!((Voltage::from_volts(1.8).millivolts() - 1800.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Current::from_milliamps(19.6)), "19.6000 mA");
        assert_eq!(format!("{}", Current::from_nanoamps(80.0)), "80.0000 nA");
        assert_eq!(format!("{}", Voltage::from_volts(1.8)), "1.800 V");
    }
}
