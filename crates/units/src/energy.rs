//! Energy quantity.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use crate::{Power, Seconds};

/// An energy quantity, stored internally in joules.
///
/// Produced by `Power × Seconds`; dividing by a [`Seconds`] or a [`Power`]
/// recovers the other factor.
///
/// # Examples
///
/// ```
/// use wsn_units::{Energy, Power, Seconds};
///
/// let e = Energy::from_microjoules(6.63);
/// let t = e / Power::from_milliwatts(35.28);
/// assert!((t.micros() - 187.9).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from millijoules.
    #[inline]
    pub fn from_millijoules(mj: f64) -> Self {
        Energy(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    #[inline]
    pub fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    #[inline]
    pub fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Returns the value in joules.
    #[inline]
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// Returns the value in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microjoules.
    #[inline]
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanojoules.
    #[inline]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in picojoules.
    #[inline]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns `true` if the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0.abs();
        if j >= 1.0 {
            write!(f, "{:.4} J", self.0)
        } else if j >= 1e-3 {
            write!(f, "{:.4} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.4} µJ", self.0 * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.4} nJ", self.0 * 1e9)
        } else {
            write!(f, "{:.4} pJ", self.0 * 1e12)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    #[inline]
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Seconds> for Energy {
    type Output = Power;
    #[inline]
    fn div(self, rhs: Seconds) -> Power {
        Power::from_watts(self.0 / rhs.secs())
    }
}

impl Div<Power> for Energy {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Power) -> Seconds {
        Seconds::from_secs(self.0 / rhs.watts())
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_roundtrips() {
        let e = Energy::from_picojoules(691.0);
        assert!((e.joules() - 691e-12).abs() < 1e-24);
        assert!((e.nanojoules() - 0.691).abs() < 1e-12);
        let e2 = Energy::from_millijoules(1.5);
        assert!((e2.microjoules() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_microjoules(6.63) / Seconds::from_micros(194.0);
        assert!((p.milliwatts() - 34.175).abs() < 0.01);
    }

    #[test]
    fn energy_over_power_is_time() {
        let t = Energy::from_joules(1.0) / Power::from_watts(4.0);
        assert!((t.secs() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_joules(2.0);
        let b = Energy::from_joules(6.0);
        assert_eq!((a + b).joules(), 8.0);
        assert_eq!((b - a).joules(), 4.0);
        assert_eq!((a * 3.0).joules(), 6.0);
        assert_eq!((3.0 * a).joules(), 6.0);
        assert_eq!((b / 2.0).joules(), 3.0);
        assert_eq!(b / a, 3.0);
    }

    #[test]
    fn sum_accumulates() {
        let total: Energy = vec![
            Energy::from_joules(0.5),
            Energy::from_joules(1.5),
            Energy::from_joules(2.0),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.joules(), 4.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Energy::from_joules(2.0)), "2.0000 J");
        assert_eq!(format!("{}", Energy::from_millijoules(3.0)), "3.0000 mJ");
        assert_eq!(format!("{}", Energy::from_microjoules(6.63)), "6.6300 µJ");
        assert_eq!(format!("{}", Energy::from_nanojoules(135.0)), "135.0000 nJ");
        assert_eq!(format!("{}", Energy::from_picojoules(691.0)), "691.0000 pJ");
    }
}
