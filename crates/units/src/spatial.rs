//! Spatial quantity: distance.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

/// A distance, stored internally in meters.
///
/// Used by the deployment and path-loss models in `wsn-channel`.
///
/// # Examples
///
/// ```
/// use wsn_units::Meters;
///
/// let d = Meters::new(12.5);
/// assert_eq!(d * 2.0, Meters::new(25.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Meters(f64);

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0.0);

    /// Creates a distance from meters.
    #[inline]
    pub const fn new(m: f64) -> Self {
        Meters(m)
    }

    /// Returns the value in meters.
    #[inline]
    pub const fn meters(self) -> f64 {
        self.0
    }

    /// Returns the value in kilometers.
    #[inline]
    pub fn kilometers(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the smaller of two distances.
    #[inline]
    pub fn min(self, other: Meters) -> Meters {
        Meters(self.0.min(other.0))
    }

    /// Returns the larger of two distances.
    #[inline]
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} m", self.0)
    }
}

impl Add for Meters {
    type Output = Meters;
    #[inline]
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}

impl Sub for Meters {
    type Output = Meters;
    #[inline]
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}

impl Div<f64> for Meters {
    type Output = Meters;
    #[inline]
    fn div(self, rhs: f64) -> Meters {
        Meters(self.0 / rhs)
    }
}

impl Div<Meters> for Meters {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let d = Meters::new(1500.0);
        assert_eq!(d.meters(), 1500.0);
        assert!((d.kilometers() - 1.5).abs() < 1e-12);
        assert_eq!(Meters::new(1.0) + Meters::new(2.0), Meters::new(3.0));
        assert_eq!(Meters::new(5.0) - Meters::new(2.0), Meters::new(3.0));
        assert_eq!(Meters::new(5.0) * 2.0, Meters::new(10.0));
        assert_eq!(Meters::new(5.0) / 2.0, Meters::new(2.5));
        assert_eq!(Meters::new(6.0) / Meters::new(2.0), 3.0);
        assert_eq!(Meters::new(6.0).min(Meters::new(2.0)), Meters::new(2.0));
        assert_eq!(Meters::new(6.0).max(Meters::new(2.0)), Meters::new(6.0));
        assert_eq!(format!("{}", Meters::new(12.5)), "12.500 m");
    }
}
