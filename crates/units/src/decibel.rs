//! Logarithmic power (dBm) and gain/attenuation (dB) quantities.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::Power;

/// An absolute power level in decibel-milliwatts.
///
/// `DBm` is kept distinct from the relative [`Db`] so that the type system
/// rejects physically meaningless expressions such as adding two absolute
/// levels. The supported operations mirror link-budget arithmetic:
///
/// * `DBm ± Db = DBm` — apply a gain or loss,
/// * `DBm − DBm = Db` — the ratio between two levels,
/// * [`DBm::to_power`] / [`Power::to_dbm`] — linear-domain conversion.
///
/// # Examples
///
/// ```
/// use wsn_units::{DBm, Db};
///
/// let tx = DBm::new(0.0);
/// let path_loss = Db::new(88.0);
/// assert_eq!(tx - path_loss, DBm::new(-88.0));
/// assert_eq!(DBm::new(-85.0) - DBm::new(-94.0), Db::new(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DBm(f64);

impl DBm {
    /// Creates a level from a dBm value.
    #[inline]
    pub const fn new(dbm: f64) -> Self {
        DBm(dbm)
    }

    /// Returns the value in dBm.
    #[inline]
    pub const fn dbm(self) -> f64 {
        self.0
    }

    /// Converts to linear power.
    ///
    /// ```
    /// use wsn_units::DBm;
    /// assert!((DBm::new(0.0).to_power().milliwatts() - 1.0).abs() < 1e-12);
    /// assert!((DBm::new(-30.0).to_power().microwatts() - 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn to_power(self) -> Power {
        Power::from_milliwatts(10f64.powf(self.0 / 10.0))
    }

    /// Returns the smaller of two levels.
    #[inline]
    pub fn min(self, other: DBm) -> DBm {
        DBm(self.0.min(other.0))
    }

    /// Returns the larger of two levels.
    #[inline]
    pub fn max(self, other: DBm) -> DBm {
        DBm(self.0.max(other.0))
    }
}

impl fmt::Display for DBm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl Sub<Db> for DBm {
    type Output = DBm;
    #[inline]
    fn sub(self, rhs: Db) -> DBm {
        DBm(self.0 - rhs.db())
    }
}

impl Add<Db> for DBm {
    type Output = DBm;
    #[inline]
    fn add(self, rhs: Db) -> DBm {
        DBm(self.0 + rhs.db())
    }
}

impl Sub<DBm> for DBm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: DBm) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

/// A relative gain (positive) or attenuation (negative of a loss) in decibels.
///
/// Path losses in this workspace are expressed as positive `Db` values that
/// are *subtracted* from a [`DBm`] level.
///
/// # Examples
///
/// ```
/// use wsn_units::Db;
///
/// let combined = Db::new(55.0) + Db::new(33.0);
/// assert_eq!(combined, Db::new(88.0));
/// assert!((Db::new(3.0103).to_linear() - 2.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Db(f64);

impl Db {
    /// Zero gain.
    pub const ZERO: Db = Db(0.0);

    /// Creates a gain from a dB value.
    #[inline]
    pub const fn new(db: f64) -> Self {
        Db(db)
    }

    /// Returns the value in dB.
    #[inline]
    pub const fn db(self) -> f64 {
        self.0
    }

    /// Converts to a linear power ratio.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a gain from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    #[inline]
    pub fn from_linear(ratio: f64) -> Self {
        assert!(ratio > 0.0, "linear ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// Returns the smaller of two gains.
    #[inline]
    pub fn min(self, other: Db) -> Db {
        Db(self.0.min(other.0))
    }

    /// Returns the larger of two gains.
    #[inline]
    pub fn max(self, other: Db) -> Db {
        Db(self.0.max(other.0))
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    #[inline]
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    #[inline]
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    #[inline]
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Div<f64> for Db {
    type Output = Db;
    #[inline]
    fn div(self, rhs: f64) -> Db {
        Db(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_budget_ops() {
        let rx = DBm::new(0.0) - Db::new(88.0);
        assert_eq!(rx.dbm(), -88.0);
        assert_eq!((rx + Db::new(3.0)).dbm(), -85.0);
        assert_eq!((DBm::new(-85.0) - DBm::new(-88.0)).db(), 3.0);
    }

    #[test]
    fn dbm_power_roundtrip() {
        for dbm in [-94.0, -25.0, -3.0, 0.0, 15.0] {
            let back = DBm::new(dbm).to_power().to_dbm();
            assert!((back.dbm() - dbm).abs() < 1e-9, "roundtrip at {dbm} dBm");
        }
    }

    #[test]
    fn db_linear_roundtrip() {
        for db in [-20.0, -3.0, 0.0, 10.0, 30.0] {
            let back = Db::from_linear(Db::new(db).to_linear());
            assert!((back.db() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn db_reference_points() {
        assert!((Db::new(10.0).to_linear() - 10.0).abs() < 1e-12);
        assert!((Db::new(0.0).to_linear() - 1.0).abs() < 1e-12);
        assert!((Db::new(-10.0).to_linear() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn db_arithmetic() {
        assert_eq!((Db::new(3.0) + Db::new(4.0)).db(), 7.0);
        assert_eq!((Db::new(7.0) - Db::new(4.0)).db(), 3.0);
        assert_eq!((-Db::new(7.0)).db(), -7.0);
        assert_eq!((Db::new(7.0) * 2.0).db(), 14.0);
        assert_eq!((Db::new(7.0) / 2.0).db(), 3.5);
    }

    #[test]
    #[should_panic(expected = "linear ratio must be positive")]
    fn from_linear_rejects_nonpositive() {
        let _ = Db::from_linear(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", DBm::new(-25.0)), "-25.00 dBm");
        assert_eq!(format!("{}", Db::new(88.0)), "88.00 dB");
    }
}
