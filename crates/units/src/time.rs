//! Time-span quantity.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of time, stored internally in seconds.
///
/// This is the model-domain (floating point) time used by the analytical
/// energy model. The discrete-event simulator uses integer nanosecond ticks
/// (`wsn-sim`) and converts at its boundary via [`Seconds::from_nanos`] /
/// [`Seconds::nanos`].
///
/// # Examples
///
/// ```
/// use wsn_units::Seconds;
///
/// // The 802.15.4 base superframe duration scaled by beacon order 6:
/// let t_ib = Seconds::from_millis(15.36) * 64.0;
/// assert!((t_ib.secs() - 0.98304).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a time span from seconds.
    #[inline]
    pub const fn from_secs(s: f64) -> Self {
        Seconds(s)
    }

    /// Creates a time span from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Creates a time span from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Creates a time span from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Returns the value in seconds.
    #[inline]
    pub const fn secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in nanoseconds.
    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns `true` if the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s >= 1.0 {
            write!(f, "{:.4} s", self.0)
        } else if s >= 1e-3 {
            write!(f, "{:.4} ms", self.0 * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.4} µs", self.0 * 1e6)
        } else {
            write!(f, "{:.4} ns", self.0 * 1e9)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    #[inline]
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Mul<Seconds> for f64 {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_roundtrips() {
        let t = Seconds::from_micros(320.0);
        assert!((t.secs() - 3.2e-4).abs() < 1e-15);
        assert!((t.millis() - 0.32).abs() < 1e-12);
        assert!((t.nanos() - 320_000.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::from_millis(2.0);
        let b = Seconds::from_millis(6.0);
        assert!(((a + b).millis() - 8.0).abs() < 1e-12);
        assert!(((b - a).millis() - 4.0).abs() < 1e-12);
        assert!(((a * 3.0).millis() - 6.0).abs() < 1e-12);
        assert!(((3.0 * a).millis() - 6.0).abs() < 1e-12);
        assert!(((b / 2.0).millis() - 3.0).abs() < 1e-12);
        assert!((b / a - 3.0).abs() < 1e-12);
    }

    #[test]
    fn comparisons() {
        assert!(Seconds::from_micros(192.0) < Seconds::from_micros(864.0));
        assert_eq!(
            Seconds::from_millis(1.0).max(Seconds::from_micros(970.0)),
            Seconds::from_millis(1.0)
        );
        assert_eq!(
            Seconds::from_millis(1.0).min(Seconds::from_micros(970.0)),
            Seconds::from_micros(970.0)
        );
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Seconds::from_secs(1.45)), "1.4500 s");
        assert_eq!(format!("{}", Seconds::from_millis(15.36)), "15.3600 ms");
        assert_eq!(format!("{}", Seconds::from_micros(194.0)), "194.0000 µs");
        assert_eq!(format!("{}", Seconds::from_nanos(62.5)), "62.5000 ns");
    }

    #[test]
    fn sum_accumulates() {
        let t: Seconds = (1..=3).map(|i| Seconds::from_secs(i as f64)).sum();
        assert_eq!(t.secs(), 6.0);
    }
}
