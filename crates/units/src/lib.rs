//! Type-safe physical quantities for wireless-sensor-network energy modeling.
//!
//! This crate provides the small set of scalar quantities that the rest of
//! the workspace is built on: [`Power`], [`Energy`], [`Seconds`], the
//! logarithmic pair [`DBm`]/[`Db`], electrical quantities [`Current`] and
//! [`Voltage`], and auxiliary types such as [`Probability`], [`DataRate`],
//! [`Frequency`] and [`Meters`].
//!
//! Every type is a thin `f64` newtype ([C-NEWTYPE]) with the SI base unit as
//! the internal representation, explicit named constructors and accessors for
//! the scaled units that appear in the paper (µW, µJ, µs, dBm, …), and only
//! the arithmetic that is dimensionally meaningful:
//!
//! * `Power × Seconds = Energy`, `Energy / Seconds = Power`,
//!   `Energy / Power = Seconds`
//! * `Current × Voltage = Power`
//! * `DBm − Db = DBm`, `DBm − DBm = Db`, `DBm ↔ Power`
//!
//! # Examples
//!
//! Reproduce the CC2420 receive-state power from its data-sheet current:
//!
//! ```
//! use wsn_units::{Current, Voltage, Power, Seconds};
//!
//! let p_rx = Current::from_milliamps(19.6) * Voltage::from_volts(1.8);
//! assert!((p_rx.milliwatts() - 35.28).abs() < 1e-9);
//!
//! // Energy of a 194 µs idle→RX turnaround spent at RX power:
//! let e = p_rx * Seconds::from_micros(194.0);
//! assert!((e.microjoules() - 6.84432).abs() < 1e-6);
//! ```
//!
//! Link-budget arithmetic stays in the logarithmic domain:
//!
//! ```
//! use wsn_units::{DBm, Db};
//!
//! let received = DBm::new(0.0) - Db::new(88.0);
//! assert_eq!(received, DBm::new(-88.0));
//! assert!((received.to_power().watts() - 1.5848931924611143e-12).abs() < 1e-24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decibel;
mod electrical;
mod energy;
mod power;
mod probability;
mod rate;
mod spatial;
mod time;

pub use decibel::{DBm, Db};
pub use electrical::{Current, Voltage};
pub use energy::Energy;
pub use power::Power;
pub use probability::{Probability, ProbabilityError};
pub use rate::{DataRate, Frequency};
pub use spatial::Meters;
pub use time::Seconds;
