//! Property-based tests for the quantity types: conversions roundtrip and
//! dimensional arithmetic is consistent wherever it is defined.

use proptest::prelude::*;

use wsn_units::{Current, DBm, Db, Energy, Power, Probability, Seconds, Voltage};

proptest! {
    /// dBm → watts → dBm is the identity over the radio-relevant range.
    #[test]
    fn dbm_power_roundtrip(dbm in -120.0..30.0f64) {
        let back = DBm::new(dbm).to_power().to_dbm();
        prop_assert!((back.dbm() - dbm).abs() < 1e-9);
    }

    /// Positive powers roundtrip through dBm.
    #[test]
    fn power_dbm_roundtrip(uw in 1e-6..1e9f64) {
        let p = Power::from_microwatts(uw);
        let back = p.to_dbm().to_power();
        prop_assert!((back.microwatts() - uw).abs() < uw * 1e-9);
    }

    /// Applying then removing a gain is the identity.
    #[test]
    fn db_gain_inverts(dbm in -120.0..20.0f64, gain in -60.0..60.0f64) {
        let level = DBm::new(dbm);
        let g = Db::new(gain);
        let back = (level + g) - g;
        prop_assert!((back.dbm() - dbm).abs() < 1e-12);
    }

    /// `DBm − DBm` then re-applied recovers the original difference.
    #[test]
    fn dbm_difference_consistent(a in -120.0..20.0f64, b in -120.0..20.0f64) {
        let d = DBm::new(a) - DBm::new(b);
        prop_assert!(((DBm::new(b) + d).dbm() - a).abs() < 1e-12);
    }

    /// Linear/log conversion of ratios roundtrips.
    #[test]
    fn db_linear_roundtrip(db in -80.0..80.0f64) {
        let back = Db::from_linear(Db::new(db).to_linear());
        prop_assert!((back.db() - db).abs() < 1e-9);
    }

    /// (P × t) / t recovers P; (P × t) / P recovers t.
    #[test]
    fn energy_factorization(mw in 1e-3..1e3f64, ms in 1e-3..1e4f64) {
        let p = Power::from_milliwatts(mw);
        let t = Seconds::from_millis(ms);
        let e = p * t;
        prop_assert!(((e / t).milliwatts() - mw).abs() < mw * 1e-12);
        prop_assert!(((e / p).millis() - ms).abs() < ms * 1e-12);
    }

    /// I × V = P is bilinear.
    #[test]
    fn electrical_power_bilinear(ma in 0.0..100.0f64, v in 0.1..5.0f64, k in 0.1..10.0f64) {
        let base = Current::from_milliamps(ma) * Voltage::from_volts(v);
        let scaled = Current::from_milliamps(ma * k) * Voltage::from_volts(v);
        prop_assert!((scaled.watts() - base.watts() * k).abs() < 1e-12 * (1.0 + base.watts() * k));
    }

    /// Energy accumulation is associative enough for ledger use.
    #[test]
    fn energy_sum_order_independent(parts in proptest::collection::vec(0.0..1e3f64, 1..20)) {
        let forward: Energy = parts.iter().map(|&j| Energy::from_microjoules(j)).sum();
        let mut reversed = parts.clone();
        reversed.reverse();
        let backward: Energy = reversed.iter().map(|&j| Energy::from_microjoules(j)).sum();
        prop_assert!((forward.joules() - backward.joules()).abs() < 1e-9 * (1.0 + forward.joules()));
    }

    /// Probabilities stay in range under complement and product.
    #[test]
    fn probability_closed_under_ops(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let pa = Probability::new(a).unwrap();
        let pb = Probability::new(b).unwrap();
        let joint = pa * pb;
        prop_assert!(joint.value() >= 0.0 && joint.value() <= 1.0);
        prop_assert!(joint.value() <= pa.value() + 1e-15);
        let c = pa.complement();
        prop_assert!((c.complement().value() - a).abs() < 1e-15);
    }

    /// `pow` is consistent with repeated multiplication.
    #[test]
    fn probability_pow_consistent(p in 0.0..=1.0f64, n in 0u32..8) {
        let pr = Probability::new(p).unwrap();
        let mut manual = Probability::ONE;
        for _ in 0..n {
            manual = manual * pr;
        }
        prop_assert!((pr.pow(n).value() - manual.value()).abs() < 1e-12);
    }

    /// Display of quantities never panics and is non-empty.
    #[test]
    fn displays_are_total(x in -1e12..1e12f64) {
        let p = Power::from_watts(x).to_string();
        let e = Energy::from_joules(x).to_string();
        let t = Seconds::from_secs(x).to_string();
        prop_assert!(!p.is_empty());
        prop_assert!(!e.is_empty());
        prop_assert!(!t.is_empty());
    }
}
