//! Experiment FIG7 — reproduces paper Figure 7: optimal energy per bit
//! versus path loss at several network loads, with the transmit-power
//! switching thresholds.
//!
//! Paper observations to check: thresholds are load-independent; the
//! transmission is efficient up to ≈88 dB; energy per bit spans
//! ≈135 nJ/bit (low loss) to ≈220 nJ/bit (88 dB); adapting saves up to
//! ≈40 % versus always transmitting at 0 dBm.
//!
//! `--reps N` merges N independent contention replications per load point
//! (exact fixed-order merges) before the model consumes them.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig7 [superframes] [--threads N] [--reps N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::contention::MonteCarloContention;
use wsn_core::link_adaptation::LinkAdaptation;
use wsn_mac::BeaconOrder;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_units::Db;

fn main() {
    let args = RunArgs::parse(40);

    let packet = PacketLayout::with_payload(120).expect("within range");
    let study = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        packet,
        BeaconOrder::new(6).expect("valid"),
    );
    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6()
        .with_superframes(args.superframes)
        .with_replications(args.reps_or(1));

    let losses: Vec<Db> = (50..=95).map(|a| Db::new(a as f64)).collect();
    let loads = [0.1, 0.42, 0.7];

    // The full loads × replications Monte-Carlo grid up front, on the
    // parallel runner.
    let points: Vec<(f64, PacketLayout)> = loads.iter().map(|&l| (l, packet)).collect();
    mc.prewarm(&args.runner(), &points);

    println!("# Figure 7 — optimal energy per bit vs path loss (120 B payload)");
    println!("\npath_loss_db,e_bit_nj@0.10,e_bit_nj@0.42,e_bit_nj@0.70,level@0.42");
    let sweeps: Vec<_> = loads
        .iter()
        .map(|&l| study.sweep(&losses, l, &ber, &mc))
        .collect();
    for (i, loss) in losses.iter().enumerate() {
        println!(
            "{:.0},{:.1},{:.1},{:.1},{}",
            loss.db(),
            sweeps[0][i].energy_per_bit.nanojoules(),
            sweeps[1][i].energy_per_bit.nanojoules(),
            sweeps[2][i].energy_per_bit.nanojoules(),
            sweeps[1][i].level
        );
    }

    println!("\n## switching thresholds per load (paper: load-independent)");
    for (load, sweep) in loads.iter().zip(&sweeps) {
        let policy = LinkAdaptation::thresholds(sweep);
        let text: Vec<String> = policy
            .thresholds()
            .iter()
            .map(|(a, l)| format!("{}→{}", a, l))
            .collect();
        println!("λ={load:.2}: {}", text.join(", "));
    }

    // The ~40 % adaptation saving at low path loss.
    let adaptive = sweeps[1][5].energy_per_bit; // 55 dB entry
    let fixed_max = study.energy_at(Db::new(55.0), TxPowerLevel::Zero, 0.42, &ber, &mc);
    println!(
        "\nadaptation saving at 55 dB: {:.1} %  (paper: up to 40 %)",
        (1.0 - adaptive.joules() / fixed_max.joules()) * 100.0
    );
}
