//! Experiment FIG9 — reproduces paper Figure 9: (a) the energy breakdown
//! per protocol phase and (b) the time breakdown per radio state, for the
//! §5 case study.
//!
//! Two independent reproductions are printed and cross-checked:
//! the analytical model (averaged over the path-loss population) and the
//! discrete-event scenario (all 16 channels × `--reps` replications in
//! parallel, with replication-based standard errors).
//!
//! Paper reference: energy — beacon ≈20 %, contention ≈25 %, transmit
//! <50 %, ACK(+IFS) ≈15 %; time — shutdown 98.77 %, idle 0.47 %,
//! TX 0.48 %, RX 0.28 %.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig9 [superframes] [--threads N] [--reps N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::MonteCarloContention;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::{PhaseTag, RadioModel, StateKind};

fn main() {
    let args = RunArgs::parse(40);
    let superframes = args.superframes;

    let ber = EmpiricalCc2420Ber::paper();
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let mc = MonteCarloContention::figure6().with_superframes(superframes);
    mc.prewarm(&args.runner(), &[(study.load(), study.packet())]);
    let report = study.run(&ber, &mc);

    println!("# Figure 9 — breakdowns for the case study");
    println!("\n## (model) energy per phase  [paper: beacon 20 %, contention 25 %, transmit <50 %, ack 15 %]");
    for phase in [
        PhaseTag::Beacon,
        PhaseTag::Contention,
        PhaseTag::Transmit,
        PhaseTag::AckWait,
        PhaseTag::Ifs,
    ] {
        println!(
            "  {:<11}: {:5.1} %",
            phase.to_string(),
            report.phase_fraction(phase) * 100.0
        );
    }
    println!(
        "\n## (model) time per state  [paper: shutdown 98.77 %, idle 0.47 %, tx 0.48 %, rx 0.28 %]"
    );
    for state in StateKind::ALL {
        println!(
            "  {:<11}: {:7.3} %",
            state.to_string(),
            report.state_fraction(state) * 100.0
        );
    }

    // Discrete-event cross-check through the scenario layer: the full 16
    // channels with link-adapted power levels, run as parallel streaming
    // simulations with replication-based standard errors.
    let reps = args.reps_or(2);
    let outcome = study.simulate(&args.runner(), &ber, &mc, superframes.max(10), reps);
    let net = &outcome.overall;

    println!("\n## (simulator, 16 channels × {reps} replications) energy per phase");
    let fractions = net.ledger.phase_energy_fractions();
    for (phase, f) in fractions {
        if f > 0.0 {
            println!("  {:<11}: {:5.1} %", phase.to_string(), f * 100.0);
        }
    }
    println!("\n## (simulator) time per state");
    for (state, f) in net.ledger.state_time_fractions() {
        println!("  {:<11}: {:7.3} %", state.to_string(), f * 100.0);
    }
    println!(
        "\nsimulator mean node power : {:.1} ± {:.1} µW  (model: {:.1} µW, paper: 211 µW)",
        net.mean_node_power.microwatts(),
        net.power_standard_error.microwatts(),
        report.average_power.microwatts()
    );
    println!(
        "simulator failure ratio   : {:.1} ± {:.1} %  (model: {:.1} %, paper: 16 %)",
        net.failure_ratio.value() * 100.0,
        net.failure_standard_error * 100.0,
        report.mean_failure.value() * 100.0
    );
    println!(
        "simulator mean delay      : {:.2} ± {:.2} s  (model: {:.2} s, paper: 1.45 s)",
        net.mean_delay.secs(),
        net.delay_standard_error.secs(),
        report.mean_delay.secs()
    );
}
