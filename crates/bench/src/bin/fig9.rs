//! Experiment FIG9 — reproduces paper Figure 9: (a) the energy breakdown
//! per protocol phase and (b) the time breakdown per radio state, for the
//! §5 case study.
//!
//! Two independent reproductions are printed and cross-checked:
//! the analytical model (averaged over the path-loss population) and the
//! discrete-event network simulator (one channel, 100 nodes).
//!
//! Paper reference: energy — beacon ≈20 %, contention ≈25 %, transmit
//! <50 %, ACK(+IFS) ≈15 %; time — shutdown 98.77 %, idle 0.47 %,
//! TX 0.48 %, RX 0.28 %.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig9 [superframes] [--threads N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::MonteCarloContention;
use wsn_core::link_adaptation::LinkAdaptation;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::{PhaseTag, RadioModel, StateKind, TxPowerLevel};
use wsn_sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use wsn_sim::ChannelSimConfig;
use wsn_units::{Db, Seconds};

fn main() {
    let args = RunArgs::parse(40);
    let superframes = args.superframes;

    let ber = EmpiricalCc2420Ber::paper();
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let mc = MonteCarloContention::figure6().with_superframes(superframes);
    mc.prewarm(&args.runner(), &[(study.load(), study.packet())]);
    let report = study.run(&ber, &mc);

    println!("# Figure 9 — breakdowns for the case study");
    println!("\n## (model) energy per phase  [paper: beacon 20 %, contention 25 %, transmit <50 %, ack 15 %]");
    for phase in [
        PhaseTag::Beacon,
        PhaseTag::Contention,
        PhaseTag::Transmit,
        PhaseTag::AckWait,
        PhaseTag::Ifs,
    ] {
        println!(
            "  {:<11}: {:5.1} %",
            phase.to_string(),
            report.phase_fraction(phase) * 100.0
        );
    }
    println!(
        "\n## (model) time per state  [paper: shutdown 98.77 %, idle 0.47 %, tx 0.48 %, rx 0.28 %]"
    );
    for state in StateKind::ALL {
        println!(
            "  {:<11}: {:7.3} %",
            state.to_string(),
            report.state_fraction(state) * 100.0
        );
    }

    // Discrete-event cross-check: one channel of 100 nodes, path losses on
    // the population grid, link-adapted power levels from the model.
    let adaptation =
        LinkAdaptation::new(study.model().clone(), study.packet(), study.beacon_order());
    let losses: Vec<Db> = (0..100)
        .map(|i| Db::new(55.0 + 40.0 * (i as f64 + 0.5) / 100.0))
        .collect();
    let levels: Vec<TxPowerLevel> = losses
        .iter()
        .map(|&a| adaptation.best_level(a, study.load(), &ber, &mc).level)
        .collect();

    let mut channel = ChannelSimConfig::figure6(120, study.load(), 0xF169);
    channel.superframes = superframes.max(10);
    let sim = NetworkSimulator::new(NetworkConfig {
        channel,
        radio: RadioModel::cc2420(),
        path_losses: losses,
        tx_policy: TxPowerPolicy::PerNode(levels),
        coordinator_tx: wsn_units::DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
    });
    // Streaming run: aggregates only, no trace allocation.
    let net = sim.run_streaming(&ber);

    println!("\n## (simulator) energy per phase");
    let fractions = net.ledger.phase_energy_fractions();
    for (phase, f) in fractions {
        if f > 0.0 {
            println!("  {:<11}: {:5.1} %", phase.to_string(), f * 100.0);
        }
    }
    println!("\n## (simulator) time per state");
    for (state, f) in net.ledger.state_time_fractions() {
        println!("  {:<11}: {:7.3} %", state.to_string(), f * 100.0);
    }
    println!(
        "\nsimulator mean node power : {:.1} µW  (model: {:.1} µW, paper: 211 µW)",
        net.mean_node_power.microwatts(),
        report.average_power.microwatts()
    );
    println!(
        "simulator failure ratio   : {:.1} %  (model: {:.1} %, paper: 16 %)",
        net.failure_ratio.value() * 100.0,
        report.mean_failure.value() * 100.0
    );
    println!(
        "simulator mean delay      : {:.2} s  (model: {:.2} s, paper: 1.45 s)",
        net.mean_delay.secs(),
        report.mean_delay.secs()
    );
}
