//! Experiment FIG4 — reproduces paper Figure 4: bit error probability
//! versus received power, and the exponential regression of eq. (1).
//!
//! The paper measured a CC2420 pair through calibrated attenuators; we
//! substitute a chip-level O-QPSK/DSSS Monte-Carlo baseband over AWGN whose
//! effective noise figure is calibrated to the paper's curve at −90 dBm,
//! then regress the simulated points exactly as the paper regressed its
//! measurements.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig4 [bits_per_point]`

use wsn_phy::baseband::{ber_sweep, BasebandConfig};
use wsn_phy::ber::{calibrate_noise_figure, BerModel, EmpiricalCc2420Ber, HardDecisionDsssBer};
use wsn_phy::regression::ExponentialFit;
use wsn_sim::Xoshiro256StarStar;
use wsn_units::DBm;

fn main() {
    let min_bits: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000_000);

    let paper = EmpiricalCc2420Ber::paper();
    let anchor = DBm::new(-90.0);
    let target = paper.bit_error_probability(anchor).value();
    let nf = calibrate_noise_figure(anchor, target);
    println!("# Figure 4 — BER vs received power");
    println!("calibrated effective noise figure: {nf} (anchor −90 dBm @ {target:.3e})");

    let powers: Vec<f64> = (-94..=-85).map(|p| p as f64).collect();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xF164);
    let points = ber_sweep(BasebandConfig::new(nf), &powers, min_bits, 400, &mut rng);

    println!("\np_rx_dbm,ber_simulated,ber_paper_eq1,ber_analytic_union_bound");
    let analytic = HardDecisionDsssBer::new(nf);
    for &(dbm, ber) in &points {
        println!(
            "{:.0},{:.4e},{:.4e},{:.4e}",
            dbm,
            ber,
            paper.bit_error_probability(DBm::new(dbm)).value(),
            analytic.bit_error_probability(DBm::new(dbm)).value()
        );
    }

    let positive: Vec<(f64, f64)> = points.iter().copied().filter(|p| p.1 > 0.0).collect();
    match ExponentialFit::fit(&positive) {
        Ok(fit) => {
            println!("\nregression over simulated points: {fit}");
            println!("paper eq. (1):                    y = 2.350e-30 · exp(-0.6590·x)");
            println!(
                "slope ratio (sim/paper): {:.3}",
                -fit.slope() / paper.slope_per_dbm()
            );
        }
        Err(e) => println!("regression failed: {e}"),
    }
}
