//! Experiment FIG3 — reproduces paper Figure 3: steady-state and transient
//! power/energy characterization of the CC2420-class radio.
//!
//! The published measurements are embedded as the `RadioModel::cc2420()`
//! preset; this binary prints the full characterization table and verifies
//! the worst-case transition-energy rule `E ≅ T × I(target) × VDD`.
//!
//! Usage: `cargo run -p wsn-bench --bin fig3`

use wsn_radio::{RadioModel, RadioState, TxPowerLevel};

fn main() {
    let radio = RadioModel::cc2420();

    println!(
        "# Figure 3 — CC2420 characterization at VDD = {}",
        radio.vdd()
    );
    println!("\n## steady states");
    println!("{:<14} {:>12} {:>14}", "state", "current", "power");
    for (name, state) in [
        ("shutdown", RadioState::Shutdown),
        ("idle", RadioState::Idle),
        ("rx", RadioState::Rx),
    ] {
        let p = radio.state_power(state);
        let i = p.watts() / radio.vdd().volts();
        println!("{:<14} {:>9.3} mA {:>14}", name, i * 1e3, p.to_string());
    }
    for level in TxPowerLevel::ALL {
        let p = radio.state_power(RadioState::Tx(level));
        println!(
            "{:<14} {:>9.3} mA {:>14}",
            format!("tx {}", level),
            level.supply_current().milliamps(),
            p.to_string()
        );
    }

    println!("\n## transitions (worst case: E = T × P(target))");
    println!("{:<22} {:>12} {:>14}", "transition", "time", "energy");
    for (name, from, to) in [
        ("shutdown → idle", RadioState::Shutdown, RadioState::Idle),
        ("idle → rx", RadioState::Idle, RadioState::Rx),
        (
            "idle → tx(0 dBm)",
            RadioState::Idle,
            RadioState::Tx(TxPowerLevel::Zero),
        ),
        (
            "rx → tx(0 dBm)",
            RadioState::Rx,
            RadioState::Tx(TxPowerLevel::Zero),
        ),
        (
            "tx(0 dBm) → rx",
            RadioState::Tx(TxPowerLevel::Zero),
            RadioState::Rx,
        ),
    ] {
        let t = radio.transition(from, to).expect("legal transition");
        println!(
            "{:<22} {:>9.0} µs {:>14}",
            name,
            t.time.micros(),
            t.energy.to_string()
        );
    }

    println!("\n## paper cross-checks");
    let idle = radio.state_power(RadioState::Idle);
    println!(
        "idle power vs 100 µW scavenging budget : {:.1}× over",
        idle.microwatts() / 100.0
    );
    let si = radio
        .transition(RadioState::Shutdown, RadioState::Idle)
        .expect("legal");
    println!(
        "shutdown→idle energy (paper text prints '691 pJ'; the paper's own \
         worst-case rule gives {:.0} nJ — see DESIGN.md §5)",
        si.energy.nanojoules()
    );
}
