//! Experiment FIG5 — renders the paper's Figure 5 (the uplink transaction
//! timeline with its MAC overheads) as a quantified timeline, using the
//! model's expected values at the case-study operating point.
//!
//! Figure 5 is a protocol diagram rather than a data plot; reproducing it
//! means walking one expected transaction and printing each phase with its
//! duration, radio state and energy.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig5 [superframes] [--threads N]`

use wsn_bench::RunArgs;
use wsn_core::contention::{ContentionModel, MonteCarloContention};
use wsn_phy::frame::{ack_duration, beacon_duration, PacketLayout};
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_units::Seconds;

fn main() {
    let args = RunArgs::parse(40);

    let radio = RadioModel::cc2420();
    let packet = PacketLayout::with_payload(120).expect("within range");
    let mc = MonteCarloContention::figure6().with_superframes(args.superframes);
    mc.prewarm(&args.runner(), &[(0.433, packet)]);
    let stats = mc.stats(0.433, packet);
    let level = TxPowerLevel::Neg5;

    let rows: Vec<(&str, Seconds, RadioState)> = vec![
        (
            "chip wake-up (T_si)",
            Seconds::from_millis(1.0),
            RadioState::Idle,
        ),
        ("radio wake-up (T_ia)", radio.turn_on_time(), RadioState::Rx),
        ("beacon reception", beacon_duration(), RadioState::Rx),
        ("contention (mean)", stats.mean_contention, RadioState::Idle),
        (
            "CCA turn-ons (mean N_CCA × T_ia)",
            radio.turn_on_time() * stats.mean_ccas,
            RadioState::Rx,
        ),
        (
            "uplink packet (133 B)",
            packet.duration(),
            RadioState::Tx(level),
        ),
        ("t_ack⁻ gap", Seconds::from_micros(192.0), RadioState::Idle),
        ("acknowledgement", ack_duration(), RadioState::Rx),
        (
            "interframe spacing",
            Seconds::from_micros(640.0),
            RadioState::Idle,
        ),
    ];

    println!("# Figure 5 — expected uplink transaction timeline (λ = 0.43, −5 dBm)");
    println!(
        "{:<34} {:>12} {:>10} {:>12}",
        "phase", "duration", "state", "energy"
    );
    let mut t_total = Seconds::ZERO;
    let mut e_total = 0.0;
    for (name, duration, state) in rows {
        let energy = radio.state_power(state) * duration;
        e_total += energy.microjoules();
        t_total += duration;
        println!(
            "{:<34} {:>9.0} µs {:>10} {:>9.2} µJ",
            name,
            duration.micros(),
            state.to_string(),
            energy.microjoules()
        );
    }
    println!(
        "{:<34} {:>9.0} µs {:>10} {:>9.2} µJ",
        "TOTAL (active)",
        t_total.micros(),
        "-",
        e_total
    );
    println!(
        "\nactive fraction of the 983 ms superframe: {:.2} % — the radio sleeps the rest",
        t_total.secs() / 0.98304 * 100.0
    );
}
