//! Experiment SCALE — single-channel node-count ladder for the
//! million-node hot path.
//!
//! One channel, one replication, node counts climbing a decade per point
//! (10³ → 10⁶): the configuration where nothing amortizes the per-node
//! cost — no channel parallelism, no replication parallelism — so the
//! numbers isolate exactly what the SoA node state, the bitmap-skipped
//! calendar ring and the O(1) config views buy. Each point reports
//! engine events per second (throughput — the number that must stay flat
//! as N grows, or the hot path is super-linear) and the mean µW per node
//! (the paper's headline metric; at fixed aggregate load λ the beacon
//! interval stretches with N, so per-node power falls ~1/N — the ladder
//! pins that trend, not a constant).
//!
//! The ladder also *proves* the spatial-shard contract where it matters:
//! at the largest point at or below 10⁵ nodes, the sharded run
//! (`run_accumulate_sharded`, 4 shards) is compared field-for-field —
//! f64s by bit pattern — against the serial run, and the binary aborts on
//! any mismatch.
//!
//! The 10⁶-node point is attempted only when the estimated footprint
//! (calendar ring + per-node state) fits comfortably in the host's
//! available memory; a skipped point is recorded in the JSON rather than
//! silently dropped. `BENCH_SCALE_MAX_NODES` caps the ladder from the
//! environment — CI's smoke run sets it to keep the ladder small.
//!
//! Usage: `cargo run --release -p wsn-bench --bin bench_scale
//! [superframes] [--threads N] [--json]`

use std::time::Instant;

use wsn_bench::{elapsed_ms, Json, RunArgs, BENCH_SCALE_PATH};
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;
use wsn_sim::network::{NetworkConfig, NetworkSimulator, NetworkSummary, TxPowerPolicy};
use wsn_sim::ChannelSimConfig;
use wsn_units::{DBm, Db, Seconds};

/// Fixed per-point traffic so the ladder is comparable across PRs.
const PAYLOAD_BYTES: usize = 120;
const LOAD: f64 = 0.4;
const SEED: u64 = 0x5CA1E;

/// The single channel at `nodes`: a deterministic 55–95 dB loss ramp
/// (stride 997 decorrelates loss from node index) under channel-inversion
/// power control — every node does per-node BER math, like the studies.
fn scale_config(nodes: usize, superframes: u32) -> NetworkConfig {
    let mut channel = ChannelSimConfig::figure6(PAYLOAD_BYTES, LOAD, SEED);
    channel.nodes = nodes;
    channel.superframes = superframes;
    NetworkConfig {
        channel,
        radio: RadioModel::cc2420(),
        path_losses: (0..nodes)
            .map(|i| Db::new(55.0 + 40.0 * (i % 997) as f64 / 997.0))
            .collect(),
        tx_policy: TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        },
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    }
}

/// Rough resident-set estimate for one ladder point: the calendar ring
/// (the dominant allocation at 10⁶ nodes — `ring × 5 classes × 8 B`
/// buckets plus the occupancy bitmap) and ~600 B of per-node state (RNG,
/// CSMA machine, hot struct, ledger, losses/levels/probs).
fn estimated_bytes(cfg: &NetworkConfig) -> u64 {
    let sf_slots = cfg.channel.timings().superframe_slots;
    let ring = (sf_slots + 301).next_power_of_two();
    let buckets = ring * 5 * 8;
    let bitmap = ring * 5 / 8 + ring / 8;
    buckets + bitmap + cfg.channel.nodes as u64 * 600
}

/// `MemAvailable` from `/proc/meminfo`, if readable.
fn available_memory_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    let line = meminfo.lines().find(|l| l.starts_with("MemAvailable:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Field-for-field equality of two summaries, f64s compared by bit
/// pattern — the shard contract is *bit*-identity, not tolerance.
fn summaries_bit_identical(a: &NetworkSummary, b: &NetworkSummary) -> bool {
    a.mean_node_power == b.mean_node_power
        && a.node_powers == b.node_powers
        && a.failure_ratio == b.failure_ratio
        && a.transactions == b.transactions
        && a.mean_delay == b.mean_delay
        && a.mean_attempts.to_bits() == b.mean_attempts.to_bits()
        && a.energy_per_bit_nj.to_bits() == b.energy_per_bit_nj.to_bits()
        && a.cap_power == b.cap_power
        && a.cfp_power == b.cfp_power
        && a.ledger.total_energy() == b.ledger.total_energy()
}

fn main() {
    let args = RunArgs::parse(4);
    let runner = args.runner();
    let max_nodes: usize = std::env::var("BENCH_SCALE_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);

    let ber = EmpiricalCc2420Ber::paper();
    let ladder = [1_000usize, 10_000, 100_000, 1_000_000];

    println!(
        "# Single-channel scale ladder ({} superframes/point, load {LOAD}, {PAYLOAD_BYTES} B)",
        args.superframes
    );

    let mut points: Vec<Json> = Vec::new();
    let mut skipped: Vec<Json> = Vec::new();
    let mut ran: Vec<usize> = Vec::new();
    for &nodes in ladder.iter().filter(|&&n| n <= max_nodes) {
        let cfg = scale_config(nodes, args.superframes);
        let estimate = estimated_bytes(&cfg);
        if let Some(available) = available_memory_bytes() {
            // Leave half the host free: a swapping benchmark measures the
            // disk, not the engine.
            if estimate * 2 > available {
                println!(
                    "{nodes:>9} nodes : skipped (needs ~{:.1} GiB of {:.1} GiB available)",
                    estimate as f64 / (1u64 << 30) as f64,
                    available as f64 / (1u64 << 30) as f64
                );
                skipped.push(Json::Obj(vec![
                    ("nodes", Json::Int(nodes as i64)),
                    ("estimated_bytes", Json::Int(estimate as i64)),
                    ("available_bytes", Json::Int(available as i64)),
                ]));
                continue;
            }
        }
        let sim = NetworkSimulator::new(cfg);
        let t0 = Instant::now();
        let (mut acc, events) = sim.run_accumulate_counted(&ber);
        let wall_ms = elapsed_ms(t0);
        acc.seal_replication();
        let summary = acc.summary();
        let events_per_sec = events as f64 / (wall_ms / 1e3);
        let power_uw = summary.mean_node_power.microwatts();
        // Deterministic results and wall-clock on separate lines: the
        // timing line carries "threads" so CI's `grep -v threads` filter
        // leaves only bit-stable output for the 1-vs-N determinism diff.
        println!(
            "{nodes:>9} nodes : {events:>10} events, {power_uw:>7.1} µW/node, Pr_fail {:.4}",
            summary.failure_ratio.value()
        );
        println!(
            "{nodes:>9} timing: {wall_ms:>9.1} ms ⇒ {events_per_sec:>11.0} events/s ({} threads)",
            runner.threads()
        );
        points.push(Json::Obj(vec![
            ("nodes", Json::Int(nodes as i64)),
            ("events", Json::Int(events as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("events_per_sec", Json::Num(events_per_sec)),
            ("power_uw_per_node", Json::Num(power_uw)),
            ("pr_fail", Json::Num(summary.failure_ratio.value())),
            ("transactions", Json::Int(summary.transactions as i64)),
        ]));
        ran.push(nodes);
    }
    assert!(!ran.is_empty(), "every ladder point was skipped");

    // --- sharded-vs-unsharded bit-identity --------------------------------
    // Verified at the largest executed point at or below 10⁵ nodes (the
    // acceptance bar; re-running the 10⁶ point would double the ladder's
    // peak footprint).
    let identity_nodes = ran
        .iter()
        .copied()
        .filter(|&n| n <= 100_000)
        .max()
        .expect("ladder always starts at 10³");
    const SHARDS: usize = 4;
    let sim = NetworkSimulator::new(scale_config(identity_nodes, args.superframes));
    let mut serial = sim.run_accumulate(&ber);
    serial.seal_replication();
    let mut sharded = sim.run_accumulate_sharded(&ber, SHARDS);
    sharded.seal_replication();
    let identical = summaries_bit_identical(&serial.summary(), &sharded.summary());
    println!(
        "shard identity  : {identity_nodes} nodes, {SHARDS} shards vs serial ⇒ {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(
        identical,
        "sharded run diverged from serial at {identity_nodes} nodes"
    );

    if args.json {
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("scale_ladder".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("load", Json::Num(LOAD)),
            ("payload_bytes", Json::Int(PAYLOAD_BYTES as i64)),
            ("points", Json::Arr(points)),
            ("skipped", Json::Arr(skipped)),
            (
                "sharded_identity",
                Json::Obj(vec![
                    ("nodes", Json::Int(identity_nodes as i64)),
                    ("shards", Json::Int(SHARDS as i64)),
                    ("identical", Json::Bool(identical)),
                ]),
            ),
        ]);
        std::fs::write(BENCH_SCALE_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_SCALE_PATH}");
    }
}
