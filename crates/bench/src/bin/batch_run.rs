//! Batch simulation service CLI — run a directory or manifest of saved
//! scenarios ([`wsn_sim::persist`]) as one deterministic job grid.
//!
//! Every scenario file is loaded and validated before anything runs; the
//! whole set then executes through one shared worker pool
//! ([`wsn_sim::BatchSet::run`]), streaming one compact JSON record per
//! scenario (JSON-lines on stdout) plus a final aggregate record. Results
//! are bit-identical to running each scenario alone, for every
//! `--threads` value and any file ordering.
//!
//! With `--json`, a `BENCH_batch.json` document is also written:
//! scenarios/sec over the batch, per-scenario wall-clock and `host_cpus`,
//! mirroring the other `BENCH_*.json` schemas.
//!
//! Usage:
//! `batch_run (--dir DIR | --manifest FILE) [--threads N] [--json]`

use std::path::Path;

use wsn_bench::{Json, BENCH_BATCH_PATH};
use wsn_sim::{BatchSet, Runner};

struct BatchArgs {
    dir: Option<String>,
    manifest: Option<String>,
    threads: Option<usize>,
    json: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: batch_run (--dir DIR | --manifest FILE) [--threads N] [--json]");
    std::process::exit(2);
}

fn parse_args() -> BatchArgs {
    let mut out = BatchArgs {
        dir: None,
        manifest: None,
        threads: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(path) if !path.is_empty() => out.dir = Some(path),
                _ => usage("--dir requires a directory path"),
            },
            "--manifest" => match args.next() {
                Some(path) if !path.is_empty() => out.manifest = Some(path),
                _ => usage("--manifest requires a file path"),
            },
            "--threads" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0);
                match value {
                    Some(n) => out.threads = Some(n),
                    None => usage("--threads requires a positive integer"),
                }
            }
            "--json" => out.json = true,
            other => usage(&format!("unrecognized argument `{other}`")),
        }
    }
    if out.dir.is_some() == out.manifest.is_some() {
        usage("exactly one of --dir or --manifest is required");
    }
    out
}

fn main() {
    let args = parse_args();
    let runner = match args.threads {
        Some(n) => Runner::with_threads(n),
        None => Runner::from_env(),
    };

    let set = if let Some(dir) = &args.dir {
        BatchSet::load_dir(Path::new(dir))
    } else {
        BatchSet::load_manifest(Path::new(args.manifest.as_deref().expect("checked in parse")))
    };
    let set = match set {
        Ok(set) => set,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "# batch: {} scenarios, {} threads{}",
        set.entries().len(),
        runner.threads(),
        match set.batch_seed() {
            Some(seed) => format!(", manifest seed {seed}"),
            None => ", saved seeds".to_string(),
        }
    );

    let stdout = std::io::stdout();
    let mut sink = stdout.lock();
    let report = match set.run(&runner, &mut sink) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: cannot stream results: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "# done: {} scenarios, {} jobs, {:.0} ms ({:.2} scenarios/s)",
        report.records.len(),
        report.jobs,
        report.wall_ms,
        report.scenarios_per_sec()
    );

    if args.json {
        let points: Vec<Json> = report
            .records
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("scenario", Json::Str(r.name.clone())),
                    ("seed", Json::Str(r.seed.to_string())),
                    ("job_ms", Json::Num(r.job_ms)),
                    (
                        "power_uw",
                        Json::Num(r.outcome.overall.mean_node_power.microwatts()),
                    ),
                    (
                        "pr_fail",
                        Json::Num(r.outcome.overall.failure_ratio.value()),
                    ),
                    (
                        "transactions",
                        Json::Int(r.outcome.overall.transactions as i64),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("batch_run".into())),
            ("scenarios", Json::Int(report.records.len() as i64)),
            ("jobs", Json::Int(report.jobs as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("wall_ms", Json::Num(report.wall_ms)),
            ("scenarios_per_sec", Json::Num(report.scenarios_per_sec())),
            ("points", Json::Arr(points)),
        ]);
        std::fs::write(BENCH_BATCH_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_BATCH_PATH}");
    }
}
