//! Batch simulation service CLI — run a directory or manifest of saved
//! scenarios ([`wsn_sim::persist`]) as one fault-tolerant job farm.
//!
//! Every scenario file is loaded and validated before anything runs; the
//! whole set then executes through one shared worker pool
//! ([`wsn_sim::BatchSet::run_with`]), streaming one compact JSON record
//! per scenario (JSON-lines) plus a final aggregate record. Results are
//! bit-identical to running each scenario alone, for every `--threads`
//! value, any file ordering and any resume point.
//!
//! Fault tolerance:
//!
//! * `--journal FILE` appends an fsync'd progress record per completed
//!   scenario; `--resume` (requires `--journal`) skips scenarios whose
//!   config fingerprint already completed and re-runs changed ones, so a
//!   `kill -9` mid-farm loses at most one wave of work.
//! * A panicking scenario becomes a `"status":"failed"` record (retried
//!   `--retries` times) and the rest of the farm keeps running;
//!   `--timeout-s` turns runaway scenarios into `"timeout"` records.
//! * Results go to stdout, a file (`--out`, repaired and appended on
//!   `--resume`) or a TCP peer (`--tcp HOST:PORT`) that reconnects with
//!   seeded exponential backoff; `--tcp-ack` requires a 1-byte ack per
//!   line (at-least-once delivery) and `--overflow FILE` spills to disk
//!   while the peer is down, draining on reconnect.
//!
//! Exit codes: 0 all scenarios ok, 2 usage error, 3 when any scenario
//! failed or timed out (`--strict` additionally stops the farm at the
//! first such record), 1 on operational errors (load, journal, sink).
//! Once the farm has started, every exit path first prints a structured
//! `# summary:` JSON record on stderr (outcome counts, sink counters,
//! exit code) so scripts never have to scrape prose.
//!
//! With `--json`, a `BENCH_batch.json` document is also written:
//! scenarios/sec over the batch, per-scenario wall-clock, `host_cpus`,
//! and the resume/retry/sink counters. With `--metrics PATH|-`, the
//! [`wsn_sim::telemetry`] registry streams JSONL snapshots per wave
//! plus a final one (see `SCHEMA.md` § OBSERVABILITY); telemetry is
//! deterministically inert, so simulation output stays bit-identical.

use std::path::{Path, PathBuf};
use std::time::Duration;

use wsn_bench::{Json, BENCH_BATCH_PATH};
use wsn_sim::{
    repair_jsonl_tail, BatchReport, BatchSet, ResultSink, RunConfig, Runner, ScenarioStatus,
    SinkCounters, TcpSink, WriteSink,
};

struct BatchArgs {
    dir: Option<String>,
    manifest: Option<String>,
    threads: Option<usize>,
    json: bool,
    journal: Option<PathBuf>,
    resume: bool,
    strict: bool,
    retries: u32,
    timeout_s: Option<f64>,
    out: Option<PathBuf>,
    tcp: Option<String>,
    tcp_ack: bool,
    overflow: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

const USAGE: &str = "usage: batch_run (--dir DIR | --manifest FILE) [--threads N] [--json]\n\
     \x20                [--journal FILE] [--resume] [--strict] [--retries N] [--timeout-s S]\n\
     \x20                [--out FILE | --tcp HOST:PORT [--tcp-ack] [--overflow FILE]]\n\
     \x20                [--metrics PATH|-] [--help]";

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn help() -> ! {
    println!("{USAGE}");
    println!(
        "\nRun a directory or manifest of saved scenarios as one fault-tolerant\n\
         job farm. One JSON record per scenario (JSON-lines) plus a final\n\
         aggregate record go to the sink; progress goes to stderr, including a\n\
         rate-limited `# heartbeat: done/total done, N failed, eta S, R events/s`\n\
         line per wave and a final structured `# summary:` JSON record.\n\
         \n\
         --metrics PATH|-  enable wsn_sim::telemetry and stream snapshot pairs\n\
         \x20                 (one deterministic + one timing JSONL record per\n\
         \x20                 wave, then a final pair with \"final\":true) to PATH,\n\
         \x20                 `-` for stdout. Format: SCHEMA.md, OBSERVABILITY\n\
         \x20                 section. Telemetry is deterministically inert:\n\
         \x20                 simulation output is bit-identical with it on/off.\n\
         \n\
         Exit codes:\n\
         \x20 0  every scenario completed ok\n\
         \x20 1  operational error (scenario load, journal I/O, sink failure)\n\
         \x20 2  usage error (bad or missing arguments)\n\
         \x20 3  farm completed but at least one scenario failed or timed out\n\
         \x20    (with --strict the farm stops at the first such record)"
    );
    std::process::exit(0);
}

fn parse_args() -> BatchArgs {
    let mut out = BatchArgs {
        dir: None,
        manifest: None,
        threads: None,
        json: false,
        journal: None,
        resume: false,
        strict: false,
        retries: 0,
        timeout_s: None,
        out: None,
        tcp: None,
        tcp_ack: false,
        overflow: None,
        metrics: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(path) if !path.is_empty() => out.dir = Some(path),
                _ => usage("--dir requires a directory path"),
            },
            "--manifest" => match args.next() {
                Some(path) if !path.is_empty() => out.manifest = Some(path),
                _ => usage("--manifest requires a file path"),
            },
            "--threads" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0);
                match value {
                    Some(n) => out.threads = Some(n),
                    None => usage("--threads requires a positive integer"),
                }
            }
            "--json" => out.json = true,
            "--journal" => match args.next() {
                Some(path) if !path.is_empty() => out.journal = Some(PathBuf::from(path)),
                _ => usage("--journal requires a file path"),
            },
            "--resume" => out.resume = true,
            "--strict" => out.strict = true,
            "--retries" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => out.retries = n,
                None => usage("--retries requires a non-negative integer"),
            },
            "--timeout-s" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|&s| s.is_finite() && s >= 0.0);
                match value {
                    Some(s) => out.timeout_s = Some(s),
                    None => usage("--timeout-s requires a non-negative number of seconds"),
                }
            }
            "--out" => match args.next() {
                Some(path) if !path.is_empty() => out.out = Some(PathBuf::from(path)),
                _ => usage("--out requires a file path"),
            },
            "--tcp" => match args.next() {
                Some(addr) if !addr.is_empty() => out.tcp = Some(addr),
                _ => usage("--tcp requires a HOST:PORT address"),
            },
            "--tcp-ack" => out.tcp_ack = true,
            "--overflow" => match args.next() {
                Some(path) if !path.is_empty() => out.overflow = Some(PathBuf::from(path)),
                _ => usage("--overflow requires a file path"),
            },
            "--metrics" => match args.next() {
                Some(path) if !path.is_empty() => out.metrics = Some(PathBuf::from(path)),
                _ => usage("--metrics requires a file path or `-` for stdout"),
            },
            "--help" | "-h" => help(),
            other => usage(&format!("unrecognized argument `{other}`")),
        }
    }
    if out.dir.is_some() == out.manifest.is_some() {
        usage("exactly one of --dir or --manifest is required");
    }
    if out.resume && out.journal.is_none() {
        usage("--resume requires --journal (the journal records what completed)");
    }
    if out.out.is_some() && out.tcp.is_some() {
        usage("--out and --tcp are mutually exclusive");
    }
    if (out.tcp_ack || out.overflow.is_some()) && out.tcp.is_none() {
        usage("--tcp-ack/--overflow only apply to a --tcp sink");
    }
    if out.metrics.as_deref() == Some(Path::new("-")) && out.out.is_none() && out.tcp.is_none() {
        usage("--metrics - (stdout) requires --out or --tcp so scenario records keep their own stream");
    }
    out
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let runner = match args.threads {
        Some(n) => Runner::with_threads(n),
        None => Runner::from_env(),
    };

    let set = if let Some(dir) = &args.dir {
        BatchSet::load_dir(Path::new(dir))
    } else {
        BatchSet::load_manifest(Path::new(args.manifest.as_deref().expect("checked in parse")))
    };
    let set = match set {
        Ok(set) => set,
        Err(e) => fail(e),
    };
    eprintln!(
        "# batch: {} scenarios, {} threads{}{}",
        set.entries().len(),
        runner.threads(),
        match set.batch_seed() {
            Some(seed) => format!(", manifest seed {seed}"),
            None => ", saved seeds".to_string(),
        },
        if args.resume { ", resuming" } else { "" }
    );

    let config = RunConfig {
        journal: args.journal.clone(),
        resume: args.resume,
        strict: args.strict,
        timeout: args.timeout_s.map(Duration::from_secs_f64),
        retries: args.retries,
        metrics: args.metrics.clone(),
        heartbeat: true,
    };

    // Build the result sink: stdout, an (append-on-resume) file, or a
    // retrying TCP stream.
    let stdout = std::io::stdout();
    let mut sink: Box<dyn ResultSink> = if let Some(addr) = &args.tcp {
        let mut tcp = TcpSink::new(addr.clone())
            .with_seed(set.batch_seed().unwrap_or(0))
            .with_ack(args.tcp_ack);
        if let Some(overflow) = &args.overflow {
            tcp = tcp.with_overflow(overflow.clone());
        }
        Box::new(tcp)
    } else if let Some(path) = &args.out {
        if args.resume {
            // Drop the torn final line a killed run left, then append —
            // the concatenated stream stays clean JSONL.
            if let Err(e) = repair_jsonl_tail(path) {
                fail(format_args!("cannot repair {}: {e}", path.display()));
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(args.resume)
            .write(true)
            .truncate(!args.resume)
            .open(path);
        match file {
            // Unbuffered on purpose: a record must reach the OS before its
            // journal entry is fsync'd, or a kill -9 could lose an output
            // line the journal says is done (emit-then-journal). One
            // line-sized write syscall per scenario is noise next to the
            // simulation itself.
            Ok(file) => Box::new(WriteSink::new(file)),
            Err(e) => fail(format_args!("cannot open {}: {e}", path.display())),
        }
    } else {
        Box::new(WriteSink::new(stdout.lock()))
    };

    let run = set.run_with(&runner, sink.as_mut(), &config);
    let counters = sink.counters();
    drop(sink);

    // The farm has started, so every exit path from here first prints
    // the structured `# summary:` record (then exits 1, 3 or 0).
    let report = match run {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            emit_summary(None, &counters, 1);
            std::process::exit(1);
        }
    };

    eprintln!(
        "# done: {} scenarios ({} skipped, {} failed, {} timed out), {} jobs, {:.0} ms ({:.2} scenarios/s)",
        report.records.len(),
        report.skipped,
        report.failed(),
        report.timed_out(),
        report.jobs,
        report.wall_ms,
        report.scenarios_per_sec()
    );
    if counters != Default::default() {
        eprintln!(
            "# sink: {} connect retries, {} reconnects, {} spilled, {} drained",
            counters.connect_retries,
            counters.reconnects,
            counters.spilled_lines,
            counters.drained_lines
        );
    }

    if args.json {
        let points: Vec<Json> = report
            .records
            .iter()
            .map(|r| {
                let (power, pr_fail, transactions) = match &r.outcome {
                    Some(o) => (
                        Json::Num(o.overall.mean_node_power.microwatts()),
                        Json::Num(o.overall.failure_ratio.value()),
                        Json::Int(o.overall.transactions as i64),
                    ),
                    None => (Json::Null, Json::Null, Json::Null),
                };
                Json::Obj(vec![
                    ("scenario", Json::Str(r.name.clone())),
                    ("seed", Json::Str(r.seed.to_string())),
                    ("status", Json::Str(r.status.as_str().into())),
                    ("attempts", Json::Int(i64::from(r.attempts))),
                    ("job_ms", Json::Num(r.job_ms)),
                    ("power_uw", power),
                    ("pr_fail", pr_fail),
                    ("transactions", transactions),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("batch_run".into())),
            ("scenarios", Json::Int(report.records.len() as i64)),
            ("skipped", Json::Int(report.skipped as i64)),
            ("failed", Json::Int(report.failed() as i64)),
            ("timed_out", Json::Int(report.timed_out() as i64)),
            ("strict_aborted", Json::Bool(report.strict_aborted)),
            ("jobs", Json::Int(report.jobs as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("wall_ms", Json::Num(report.wall_ms)),
            ("scenarios_per_sec", Json::Num(report.scenarios_per_sec())),
            (
                "sink",
                Json::Obj(vec![
                    ("connect_retries", Json::Int(counters.connect_retries as i64)),
                    ("reconnects", Json::Int(counters.reconnects as i64)),
                    ("spilled_lines", Json::Int(counters.spilled_lines as i64)),
                    ("drained_lines", Json::Int(counters.drained_lines as i64)),
                ]),
            ),
            ("points", Json::Arr(points)),
        ]);
        std::fs::write(BENCH_BATCH_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_BATCH_PATH}");
    }

    // Scripts must be able to tell a clean farm from a degraded one:
    // the summary record carries the counts and the exit code.
    let exit = if report.all_ok() { 0 } else { 3 };
    emit_summary(Some(&report), &counters, exit);
    std::process::exit(exit);
}

/// Prints the structured end-of-run record: one `# summary:` line of
/// JSON on stderr with outcome counts, sink counters, the exit code and
/// (when degraded) the first failing scenario. Emitted on every exit
/// path once the farm has started.
fn emit_summary(report: Option<&BatchReport>, counters: &SinkCounters, exit: i32) {
    let first_bad = report.and_then(|report| {
        report
            .records
            .iter()
            .find(|r| !r.status.is_ok())
            .map(|r| match &r.status {
                ScenarioStatus::Failed { panic } => format!("{}: failed: {panic}", r.name),
                ScenarioStatus::Timeout => format!("{}: timeout", r.name),
                ScenarioStatus::Ok => unreachable!(),
            })
            .or_else(|| report.strict_aborted.then(|| "strict abort".to_string()))
    });
    let count = |n: usize| Json::Int(n as i64);
    let doc = Json::Obj(vec![
        ("summary", Json::Int(1)),
        (
            "ok",
            report.map_or(Json::Null, |r| {
                count(r.records.iter().filter(|r| r.status.is_ok()).count())
            }),
        ),
        ("failed", report.map_or(Json::Null, |r| count(r.failed()))),
        ("timeout", report.map_or(Json::Null, |r| count(r.timed_out()))),
        ("skipped", report.map_or(Json::Null, |r| count(r.skipped))),
        (
            "strict_aborted",
            report.map_or(Json::Null, |r| Json::Bool(r.strict_aborted)),
        ),
        (
            "first_degraded",
            first_bad.map_or(Json::Null, Json::Str),
        ),
        ("exit", Json::Int(i64::from(exit))),
        (
            "sink",
            Json::Obj(vec![
                ("connect_retries", Json::Int(counters.connect_retries as i64)),
                ("reconnects", Json::Int(counters.reconnects as i64)),
                ("spilled_lines", Json::Int(counters.spilled_lines as i64)),
                ("drained_lines", Json::Int(counters.drained_lines as i64)),
            ]),
        ),
    ]);
    eprintln!("# summary: {}", doc.render_compact());
}
