//! Experiment ADAPT — closed-loop adaptive channel assignment.
//!
//! The paper's §5 allocation is static round-robin; PR 2's ring-stratified
//! ablation showed the outer channels saturating (failure and power climb)
//! while inner channels idle. This experiment runs the
//! `wsn_sim::policy` subsystem over three scenarios where that asymmetry
//! bites —
//!
//! 1. **ring-stratified indoor disc** — channel `c` takes the `c`-th
//!    distance band, so the outer channels concentrate the weak links;
//! 2. **per-channel clusters** — one compact cluster per channel at
//!    different link budgets;
//! 3. **asymmetric channel quality** — identical populations but rising
//!    per-channel receiver noise figures
//!    ([`Scenario::with_channel_ber`]), the channel-quality seam promoted
//!    from scenario-wide to per-channel;
//! 4. **ring-stratified + GTS/downlink** — the same saturating outer
//!    rings, but with contention-free traffic in play: seven nodes per
//!    channel hold GTS uplinks and a quarter of the superframes poll
//!    each node for a downlink frame, so policies observe (and their
//!    moves perturb) CFP load alongside CAP contention;
//!
//! — and compares three [`AllocationPolicy`]s on each: the `static`
//! baseline, `greedy-rebalance` (move nodes off the worst-failure
//! channel) and `proportional-fair` (node counts ∝ inverse observed
//! failure). All policies observe only per-channel statistics, exactly
//! what a real coordinator could measure. Every trace is bit-identical
//! for every `--threads` value.
//!
//! With `--json`, the greedy ring-stratified run is written to
//! `BENCH_network.json` — per-channel wall-clock, serial-reference
//! speedup, `host_cpus` and the per-round convergence trajectory —
//! mirroring fig6's `BENCH_contention.json` schema.
//!
//! Usage: `cargo run --release -p wsn-bench --bin adaptive [superframes] [--threads N] [--reps N] [--rounds N] [--json]`

use wsn_bench::{network_bench_json, Json, RunArgs, BENCH_NETWORK_PATH};
use wsn_sim::policy::{
    AllocationPolicy, GreedyRebalance, PolicyEngine, PolicyTrace, ProportionalFair,
    StaticAllocation,
};
use wsn_sim::scenario::{BerChoice, ChannelAllocation, DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::{Runner, TimedScenarioRun};

fn scenarios(superframes: u32, reps: u32) -> Vec<Scenario> {
    let channels = 8;
    let nodes = 100;
    vec![
        Scenario::new(
            "ring-stratified disc",
            channels,
            nodes,
            DeploymentSpec::Disc {
                radius_m: 60.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified),
        Scenario::new(
            "per-channel clusters",
            channels,
            nodes,
            DeploymentSpec::Clustered {
                field_radius_m: 55.0,
                cluster_radius_m: 6.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous),
        Scenario::new(
            "asymmetric channel quality",
            channels,
            nodes,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 90.0,
            },
        )
        .with_channel_ber(
            // One model family across the sweep (offsets on the paper's
            // nominal 23 dB DSSS figure) so the gradient is the 0.75 dB
            // step, not a model discontinuity.
            (0..channels)
                .map(|c| {
                    BerChoice::HardDecisionDsss {
                        noise_figure_db: 23.0,
                    }
                    .with_noise_offset(c as f64 * 0.75)
                })
                .collect(),
        ),
        Scenario::new(
            "ring-stratified + GTS/downlink",
            channels,
            nodes,
            DeploymentSpec::Disc {
                radius_m: 60.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified)
        // Seven of each channel's hundred nodes win a GTS (the registry
        // denies the rest — the paper's scaling limit) and downlink
        // polling loads the CAP with data requests on top of the uplink.
        .with_traffic(TrafficSpec::uniform(120).with_gts(1).with_downlink(0.25)),
    ]
    .into_iter()
    .map(|s| s.with_superframes(superframes).with_replications(reps))
    .collect()
}

fn policies() -> Vec<Box<dyn AllocationPolicy>> {
    vec![
        Box::new(StaticAllocation),
        Box::new(GreedyRebalance::new(8)),
        Box::new(ProportionalFair::default()),
    ]
}

// Wall-clock stays out of these rows (it lives in the JSON document) so
// the stdout tables are byte-identical across runs and thread counts —
// CI diffs them.
fn print_trace(scenario: &str, trace: &PolicyTrace) {
    for round in &trace.rounds {
        println!(
            "{scenario},{},{},{:.2},{:.1},{:.1},{:.4},{}",
            trace.policy,
            round.round,
            round.worst_failure() * 100.0,
            round.outcome.overall.mean_node_power.microwatts(),
            round.outcome.overall.cfp_power.microwatts(),
            round.outcome.overall.ledger.total_energy().joules(),
            round.moved
        );
    }
}

fn main() {
    let args = RunArgs::parse(16);
    let runner = args.runner();
    let reps = args.reps_or(2);
    let rounds = args.rounds_or(6) as usize;

    println!(
        "# Adaptive channel assignment — 8 channels × 100 nodes, \
         {} superframes × {reps} reps × {rounds} rounds ({} threads)",
        args.superframes,
        runner.threads()
    );
    println!("\n## per-round trajectories");
    println!("scenario,policy,round,worst_fail_pct,power_uW,cfp_uW,energy_J,moved");

    // (scenario, policy) → trace, every policy on every scenario. Rounds
    // align across policies (no early stop), so per-round columns compare
    // the same per-round contention seeds under different assignments.
    let mut results: Vec<(String, Vec<PolicyTrace>)> = Vec::new();
    for scenario in scenarios(args.superframes, reps) {
        let engine = PolicyEngine::new(scenario.clone())
            .with_rounds(rounds)
            .run_all_rounds();
        let mut traces = Vec::new();
        for mut policy in policies() {
            let trace = engine.run(&runner, policy.as_mut());
            print_trace(&scenario.name, &trace);
            traces.push(trace);
        }
        results.push((scenario.name.clone(), traces));
    }

    println!("\n## summary (final round vs the static baseline)");
    println!("scenario,policy,final_worst_fail_pct,delta_vs_static_pct,rounds_to_stabilize,total_moved");
    for (scenario, traces) in &results {
        let static_final = traces[0].final_round().worst_failure();
        for trace in traces {
            let final_worst = trace.final_round().worst_failure();
            println!(
                "{scenario},{},{:.2},{:+.2},{},{}",
                trace.policy,
                final_worst * 100.0,
                (final_worst - static_final) * 100.0,
                trace
                    .rounds_to_stabilize()
                    .map_or("never".to_string(), |r| r.to_string()),
                trace.rounds.iter().map(|r| r.moved).sum::<usize>()
            );
        }
    }
    println!(
        "⇒ rebalancing is pure load relief: nodes keep their links, only \
         their contention population changes — the lever the paper's \
         static 16-channel split leaves unused."
    );

    if args.json {
        // The benchmark document records the greedy run on the
        // ring-stratified scenario: final-round channel statistics,
        // wall-clock summed per channel across rounds, and the
        // convergence trajectory.
        let greedy = &results[0].1[1];
        // Always run the serial reference — even when the measured run was
        // itself single-threaded — so `serial_wall_ms`/`speedup_vs_serial`
        // are real numbers on every host and the policy-loop speedup
        // trajectory stays comparable across PRs (fig6 only skips the
        // reference when it would literally repeat the measured run; here
        // the dedicated pass also sidesteps warm-up skew).
        let serial_wall_ms = Some({
            let engine = PolicyEngine::new(
                scenarios(args.superframes, reps)[0].clone(),
            )
            .with_rounds(rounds)
            .run_all_rounds();
            engine
                .run(&Runner::serial(), &mut GreedyRebalance::new(8))
                .wall_ms()
        });
        let channels = greedy.final_round().outcome.per_channel.len();
        let mut channel_wall_ms = vec![0.0; channels];
        for round in &greedy.rounds {
            for (total, ms) in channel_wall_ms.iter_mut().zip(&round.channel_wall_ms) {
                *total += ms;
            }
        }
        let run = TimedScenarioRun {
            outcome: greedy.final_round().outcome.clone(),
            channel_wall_ms,
            wall_ms: greedy.wall_ms(),
        };
        let rounds_json: Vec<Json> = greedy
            .rounds
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("round", Json::Int(r.round as i64)),
                    ("worst_pr_fail", Json::Num(r.worst_failure())),
                    (
                        "power_uw",
                        Json::Num(r.outcome.overall.mean_node_power.microwatts()),
                    ),
                    (
                        "energy_j",
                        Json::Num(r.outcome.overall.ledger.total_energy().joules()),
                    ),
                    ("moved", Json::Int(r.moved as i64)),
                    ("wall_ms", Json::Num(r.wall_ms)),
                ])
            })
            .collect();
        let doc = network_bench_json(
            "adaptive_policy_network",
            args.superframes,
            reps,
            runner.threads(),
            &run,
            serial_wall_ms,
            vec![
                ("scenario", Json::Str(results[0].0.clone())),
                ("policy", Json::Str(greedy.policy.clone())),
                (
                    "converged_at",
                    greedy
                        .converged_at
                        .map_or(Json::Null, |r| Json::Int(r as i64)),
                ),
                ("rounds", Json::Arr(rounds_json)),
            ],
        );
        std::fs::write(BENCH_NETWORK_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_NETWORK_PATH}");
    }
}
