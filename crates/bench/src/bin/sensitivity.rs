//! Experiment SENS — sensitivity of the case-study result to parameters the
//! paper fixes: beacon order, retry budget, beacon length and the wake-up
//! margin.
//!
//! `--reps N` merges N independent contention replications per operating
//! point before the model consumes them.
//!
//! Usage: `cargo run --release -p wsn-bench --bin sensitivity [superframes] [--threads N] [--reps N]`

use wsn_bench::RunArgs;
use wsn_core::activation::{ActivationModel, ModelInputs};
use wsn_core::contention::{ContentionModel, MonteCarloContention};
use wsn_mac::{BeaconOrder, RetryPolicy};
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_units::Db;

fn main() {
    let args = RunArgs::parse(40);

    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6()
        .with_superframes(args.superframes)
        .with_replications(args.reps_or(1));
    let packet = PacketLayout::with_payload(120).expect("within range");
    let nodes = 100.0;

    // Every beacon order below implies its own load; prewarm the feasible
    // ones on the parallel runner before the serial print loops.
    let points: Vec<(f64, PacketLayout)> = (4..=9u8)
        .filter_map(|bo| {
            let beacon_order = BeaconOrder::new(bo).expect("valid");
            let load = nodes * packet.duration().secs() / beacon_order.beacon_interval().secs();
            (load > 0.0 && load < 1.0).then_some((load, packet))
        })
        .collect();
    mc.prewarm(&args.runner(), &points);

    // Representative mid-population operating point.
    let loss = Db::new(75.0);
    let level = TxPowerLevel::Neg5;

    println!("# Sensitivity — beacon order (packet cadence follows T_ib)");
    println!("BO,T_ib_ms,load,power_uW,delay_s,fail_pct");
    for bo in 4..=9u8 {
        let beacon_order = BeaconOrder::new(bo).expect("valid");
        let t_ib = beacon_order.beacon_interval();
        let load = nodes * packet.duration().secs() / t_ib.secs();
        if load >= 1.0 {
            println!("{bo},{:.2},saturated,-,-,-", t_ib.millis());
            continue;
        }
        let stats = mc.stats(load, packet);
        let out = ActivationModel::paper_defaults(RadioModel::cc2420()).evaluate(
            &ModelInputs {
                packet,
                beacon_order,
                tx_level: level,
                path_loss: loss,
                contention: stats,
            },
            &ber,
        );
        println!(
            "{bo},{:.2},{:.3},{:.1},{:.2},{:.1}",
            t_ib.millis(),
            load,
            out.average_power.microwatts(),
            out.delay.secs(),
            out.pr_fail.value() * 100.0
        );
    }

    println!("\n# Sensitivity — retry budget N_max (85 dB path, −1 dBm)");
    println!("n_max,power_uW,fail_pct,attempts");
    let bo6 = BeaconOrder::new(6).expect("valid");
    let load = nodes * packet.duration().secs() / bo6.beacon_interval().secs();
    let stats = mc.stats(load, packet);
    for n_max in 1..=8u32 {
        let model = ActivationModel::paper_defaults(RadioModel::cc2420())
            .with_retries(RetryPolicy::new(n_max));
        let out = model.evaluate(
            &ModelInputs {
                packet,
                beacon_order: bo6,
                tx_level: TxPowerLevel::Neg1,
                path_loss: Db::new(85.0),
                contention: stats,
            },
            &ber,
        );
        println!(
            "{n_max},{:.1},{:.2},{:.2}",
            out.average_power.microwatts(),
            out.pr_fail.value() * 100.0,
            out.expected_attempts
        );
    }

    println!("\n# Sensitivity — beacon airtime (payload-dependent beacons)");
    println!("beacon_bytes,power_uW");
    for beacon_bytes in [15usize, 19, 26, 40, 60] {
        let model = ActivationModel::paper_defaults(RadioModel::cc2420())
            .with_beacon_duration(wsn_phy::consts::bytes(beacon_bytes));
        let out = model.evaluate(
            &ModelInputs {
                packet,
                beacon_order: bo6,
                tx_level: level,
                path_loss: loss,
                contention: stats,
            },
            &ber,
        );
        println!("{beacon_bytes},{:.1}", out.average_power.microwatts());
    }
}
