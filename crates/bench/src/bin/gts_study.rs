//! Experiment GTS — CAP-only versus contention-free operation.
//!
//! The paper argues GTS "does not fit well in a dense sensor network"
//! because seven descriptors cannot serve hundreds of nodes — but it
//! never quantifies what the seven slots *buy* the nodes that get them,
//! nor what coordinator-to-node (downlink) traffic costs on top of the
//! uplink-only budget. This experiment sweeps both axes on the
//! discrete-event simulator's CFP subsystem (`wsn_sim::cfp`):
//!
//! * **GTS fraction** — 0 to 7 of the channel's nodes move their uplink
//!   into dedicated tail slots (requests resolve through the real
//!   `GtsRegistry`, so denials are part of the result);
//! * **downlink rate** — a fraction of superframes delivers one pending
//!   frame per node through CAP data-request polling, loading the CAP the
//!   uplink model never sees.
//!
//! For every sweep cell the per-node energy splits into CAP (contention,
//! uplink transmission, ACK, IFS) and CFP (GTS + downlink) components
//! with replication-based standard errors, and the study reports the
//! **crossover**: the GTS fraction at which contention-free traffic
//! carries more of the node's energy than CAP contention does. A small
//! channel population (10 nodes) keeps the seven-descriptor table a
//! *majority* of the population, so the crossover is reachable — the
//! dense-network reading (100+ nodes per channel) caps the CFP share at
//! 7 %, which is the paper's argument made quantitative.
//!
//! With `--json`, the sweep is written to `BENCH_cfp.json` — per-point
//! wall-clock, a serial-reference speedup and `host_cpus` — mirroring
//! `BENCH_network.json`'s schema.
//!
//! Usage: `cargo run --release -p wsn-bench --bin gts_study [superframes] [--threads N] [--reps N] [--json]`

use wsn_bench::{elapsed_ms, Json, RunArgs, BENCH_CFP_PATH};
use wsn_sim::scenario::{DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::{Runner, ScenarioOutcome};

const CHANNELS: usize = 4;
const NODES_PER_CHANNEL: usize = 10;
const GTS_STEPS: [u32; 5] = [0, 2, 4, 6, 7];
const DL_RATES: [f64; 2] = [0.0, 0.5];

fn scenario(gts_nodes: u32, downlink_rate: f64, superframes: u32, reps: u32) -> Scenario {
    let mut traffic = TrafficSpec::uniform(120);
    if gts_nodes > 0 {
        traffic = traffic.with_gts(1).with_gts_demand(gts_nodes);
    }
    if downlink_rate > 0.0 {
        traffic = traffic.with_downlink(downlink_rate);
    }
    Scenario::new(
        format!("gts{gts_nodes}-dl{downlink_rate}"),
        CHANNELS,
        NODES_PER_CHANNEL,
        DeploymentSpec::UniformLossGrid {
            min_db: 55.0,
            max_db: 90.0,
        },
    )
    .with_traffic(traffic)
    // BO 3 lifts the per-channel load to ≈0.35 despite the small
    // population, so CAP contention is worth relieving.
    .with_beacon_order(wsn_mac::BeaconOrder::new(3).expect("BO 3 valid"))
    .with_superframes(superframes)
    .with_replications(reps)
}

struct SweepPoint {
    gts_nodes: u32,
    downlink_rate: f64,
    outcome: ScenarioOutcome,
    wall_ms: f64,
}

fn run_sweep(runner: &Runner, superframes: u32, reps: u32) -> (Vec<SweepPoint>, f64) {
    let t0 = std::time::Instant::now();
    let mut points = Vec::new();
    for &dl in &DL_RATES {
        for &gts in &GTS_STEPS {
            let s = scenario(gts, dl, superframes, reps);
            let timed = s.run_compiled_timed(runner, &s.compile());
            points.push(SweepPoint {
                gts_nodes: gts,
                downlink_rate: dl,
                outcome: timed.outcome,
                wall_ms: timed.wall_ms,
            });
        }
    }
    (points, elapsed_ms(t0))
}

/// First swept GTS fraction (at the given downlink rate) whose CFP power
/// exceeds its CAP power.
fn crossover(points: &[SweepPoint], dl: f64) -> Option<u32> {
    points
        .iter()
        .filter(|p| p.downlink_rate == dl)
        .find(|p| {
            p.outcome.overall.cfp_power.microwatts() > p.outcome.overall.cap_power.microwatts()
        })
        .map(|p| p.gts_nodes)
}

fn main() {
    let args = RunArgs::parse(20);
    wsn_bench::init_metrics(&args);
    let reps = args.reps_or(3);
    let runner = args.runner();

    println!(
        "# GTS / downlink study — {CHANNELS} channels × {NODES_PER_CHANNEL} nodes, \
         BO 3, {} superframes × {reps} reps ({} threads)",
        args.superframes,
        runner.threads()
    );
    let (points, wall_ms) = run_sweep(&runner, args.superframes, reps);

    println!(
        "\ngts_nodes,dl_rate,power_uW,power_se_uW,cap_uW,cap_se_uW,cfp_uW,cfp_se_uW,\
         fail_pct,fail_se_pct,gts_denied,dl_polls,dl_deferred"
    );
    for p in &points {
        let o = &p.outcome.overall;
        println!(
            "{},{:.2},{:.1},{:.1},{:.2},{:.2},{:.2},{:.2},{:.1},{:.1},{},{},{}",
            p.gts_nodes,
            p.downlink_rate,
            o.mean_node_power.microwatts(),
            o.power_standard_error.microwatts(),
            o.cap_power.microwatts(),
            o.cap_power_standard_error.microwatts(),
            o.cfp_power.microwatts(),
            o.cfp_power_standard_error.microwatts(),
            o.failure_ratio.value() * 100.0,
            o.failure_standard_error * 100.0,
            p.outcome.total_gts_denied(),
            o.downlink_polls,
            o.downlink_deferred,
        );
    }

    println!("\n## readings");
    for &dl in &DL_RATES {
        match crossover(&points, dl) {
            Some(gts) => println!(
                "dl={dl:.2}: CFP energy overtakes CAP energy at {gts} GTS nodes \
                 of {NODES_PER_CHANNEL}"
            ),
            None => println!(
                "dl={dl:.2}: CAP energy dominates across the whole sweep \
                 (no crossover within 7 descriptors)"
            ),
        }
    }
    let cap_only = &points[0].outcome.overall;
    let full_gts = points
        .iter()
        .find(|p| p.gts_nodes == 7 && p.downlink_rate == 0.0)
        .expect("sweep covers 7 GTS nodes");
    println!(
        "7 GTS nodes cut total node power {:.1} → {:.1} µW and failure \
         {:.1} % → {:.1} % — but a 100-node channel could hand that saving \
         to only 7 % of its population, the paper's scaling argument.",
        cap_only.mean_node_power.microwatts(),
        full_gts.outcome.overall.mean_node_power.microwatts(),
        cap_only.failure_ratio.value() * 100.0,
        full_gts.outcome.overall.failure_ratio.value() * 100.0,
    );

    if args.json {
        // Serial reference pass (always real, as in `adaptive`): the
        // sweep is small, so the recorded speedup stays comparable
        // across hosts.
        let serial_wall_ms = {
            let (_, ms) = run_sweep(&Runner::serial(), args.superframes, reps);
            ms
        };
        let json_points: Vec<Json> = points
            .iter()
            .map(|p| {
                let o = &p.outcome.overall;
                Json::Obj(vec![
                    ("gts_nodes", Json::Int(p.gts_nodes as i64)),
                    ("downlink_rate", Json::Num(p.downlink_rate)),
                    ("wall_ms", Json::Num(p.wall_ms)),
                    ("power_uw", Json::Num(o.mean_node_power.microwatts())),
                    (
                        "power_se_uw",
                        Json::Num(o.power_standard_error.microwatts()),
                    ),
                    ("cap_uw", Json::Num(o.cap_power.microwatts())),
                    (
                        "cap_se_uw",
                        Json::Num(o.cap_power_standard_error.microwatts()),
                    ),
                    ("cfp_uw", Json::Num(o.cfp_power.microwatts())),
                    (
                        "cfp_se_uw",
                        Json::Num(o.cfp_power_standard_error.microwatts()),
                    ),
                    ("pr_fail", Json::Num(o.failure_ratio.value())),
                    ("pr_fail_se", Json::Num(o.failure_standard_error)),
                    ("gts_denied", Json::Int(p.outcome.total_gts_denied() as i64)),
                    ("gts_transactions", Json::Int(o.gts_transactions as i64)),
                    ("downlink_polls", Json::Int(o.downlink_polls as i64)),
                    ("downlink_deferred", Json::Int(o.downlink_deferred as i64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("gts_study_cfp".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("replications", Json::Int(reps as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("channels", Json::Int(CHANNELS as i64)),
            ("nodes_per_channel", Json::Int(NODES_PER_CHANNEL as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("serial_wall_ms", Json::Num(serial_wall_ms)),
            ("speedup_vs_serial", Json::Num(serial_wall_ms / wall_ms)),
            (
                "crossover_gts_nodes",
                crossover(&points, 0.0).map_or(Json::Null, |g| Json::Int(g as i64)),
            ),
            (
                "crossover_gts_nodes_dl",
                crossover(&points, DL_RATES[1]).map_or(Json::Null, |g| Json::Int(g as i64)),
            ),
            ("points", Json::Arr(json_points)),
        ]);
        std::fs::write(BENCH_CFP_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_CFP_PATH}");
    }
    wsn_bench::finish_metrics(&args);
}
