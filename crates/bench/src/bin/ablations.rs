//! Experiment ABLA — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **CSMA parameter presets**: the standard's macMaxCSMABackoffs = 4
//!    versus the paper's literal "abort after two BE increments" reading,
//!    versus battery-life-extension mode (which the paper rejects for
//!    dense networks — we quantify the collision blow-up);
//! 2. **Arrival pattern**: staggered packet readiness versus all nodes
//!    contending right after the beacon (the literal prose);
//! 3. **Contention source**: Monte-Carlo versus the closed-form
//!    [`AnalyticContention`] extension versus the ideal channel;
//! 4. **GTS capacity**: why guaranteed time slots cannot serve the dense
//!    scenario;
//! 5. **Deployment scenarios beyond the paper** (scenario layer):
//!    ring-stratified path loss, heterogeneous per-channel traffic, and
//!    per-channel clusters — each run as parallel multi-channel
//!    simulations with replication-based standard errors, against the
//!    paper's uniform-population baseline;
//! 6. **Channel-assignment policies** (policy layer): the static
//!    allocation versus greedy rebalancing versus proportional-fair
//!    re-targeting, closed-loop on the ring-stratified and clustered
//!    scenarios where the static split saturates its outer channels.
//!
//! Usage: `cargo run --release -p wsn-bench --bin ablations [superframes] [--threads N] [--reps N] [--rounds N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::{
    AnalyticContention, ContentionModel, IdealContention, MonteCarloContention,
};
use wsn_mac::csma::CsmaParams;
use wsn_mac::gts::max_gts_devices;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;
use wsn_sim::policy::{
    AllocationPolicy, GreedyRebalance, PolicyEngine, ProportionalFair, StaticAllocation,
};
use wsn_sim::scenario::{ChannelAllocation, DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::ChannelSimConfig;

fn main() {
    let args = RunArgs::parse(50);
    let superframes = args.superframes;
    let runner = args.runner();

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let load = study.load();
    let ber = EmpiricalCc2420Ber::paper();

    // Ablations 1 and 2 are independent simulations: one sweep on the
    // parallel runner covers all five configurations.
    let presets = [
        ("standard_2003 (5 rounds)", CsmaParams::standard_2003()),
        ("paper literal (3 rounds)", CsmaParams::paper()),
        (
            "battery-life-extension",
            CsmaParams::battery_life_extension(),
        ),
    ];
    let arrivals = [("staggered (used)", false), ("beacon-synchronized", true)];
    let mut configs = Vec::new();
    for (_, params) in presets {
        let mut cfg = ChannelSimConfig::figure6(120, load, 0xAB1A);
        cfg.csma = params;
        cfg.superframes = superframes;
        configs.push(cfg);
    }
    for (_, synced) in arrivals {
        let mut cfg = ChannelSimConfig::figure6(120, load, 0xAB1B);
        cfg.synchronized_arrivals = synced;
        cfg.superframes = superframes;
        configs.push(cfg);
    }
    let sweep = runner.sweep_contention(&configs);

    println!("# Ablation 1 — CSMA parameter presets at the case-study load (λ={load:.2})");
    println!("preset,T_cont_ms,N_CCA,Pr_col,Pr_cf");
    for ((name, _), s) in presets.iter().zip(&sweep) {
        println!(
            "{name},{:.2},{:.2},{:.4},{:.4}",
            s.mean_contention.millis(),
            s.mean_ccas,
            s.pr_collision.value(),
            s.pr_access_failure.value()
        );
    }

    println!("\n# Ablation 2 — arrival pattern at the case-study load");
    println!("arrivals,T_cont_ms,N_CCA,Pr_col,Pr_cf");
    for ((name, _), s) in arrivals.iter().zip(&sweep[presets.len()..]) {
        println!(
            "{name},{:.2},{:.2},{:.4},{:.4}",
            s.mean_contention.millis(),
            s.mean_ccas,
            s.pr_collision.value(),
            s.pr_access_failure.value()
        );
    }

    println!("\n# Ablation 3 — contention source for the full case study");
    println!("source,power_uW,fail_pct,delay_s");
    let mc = MonteCarloContention::figure6().with_superframes(superframes);
    mc.prewarm(&runner, &[(study.load(), study.packet())]);
    let analytic = AnalyticContention::new();
    let sources: [(&str, &dyn ContentionModel); 3] = [
        ("monte-carlo", &mc),
        ("analytic fixed-point", &analytic),
        ("ideal channel", &IdealContention),
    ];
    for (name, source) in sources {
        let report = study.run(&ber, &source);
        println!(
            "{name},{:.1},{:.1},{:.2}",
            report.average_power.microwatts(),
            report.mean_failure.value() * 100.0,
            report.mean_delay.secs()
        );
    }

    println!("\n# Ablation 4 — GTS capacity versus the dense scenario");
    let nodes = study.nodes_per_channel();
    println!(
        "guaranteed time slots per superframe : {} devices",
        max_gts_devices()
    );
    println!("nodes sharing each channel           : {nodes}");
    println!(
        "coverage if GTS were used            : {:.1} % of nodes",
        max_gts_devices() as f64 / nodes as f64 * 100.0
    );
    println!(
        "⇒ the contention access period is unavoidable in this regime, as \
         the paper argues in §2."
    );

    // Ablation 5 — scenarios the paper could not sweep, all 8 channels ×
    // reps replications on the parallel runner. The indoor disc radius is
    // chosen so the exponent-3 log-distance losses span roughly the
    // paper's 55–95 dB band (95 dB ≈ 66 m).
    let reps = args.reps_or(3);
    let sim_superframes = superframes.min(20);
    let base_channels = 8;
    let nodes = 100;
    let scenarios = [
        Scenario::new(
            "uniform-population baseline (paper reading)",
            base_channels,
            nodes,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        ),
        Scenario::new(
            "indoor disc, round-robin channels",
            base_channels,
            nodes,
            DeploymentSpec::Disc {
                radius_m: 60.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        ),
        Scenario::new(
            "indoor disc, ring-stratified channels",
            base_channels,
            nodes,
            DeploymentSpec::Disc {
                radius_m: 60.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified),
        Scenario::new(
            "heterogeneous traffic (30…123 B per channel)",
            base_channels,
            nodes,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        )
        .with_traffic(TrafficSpec::per_channel(vec![30, 40, 60, 80, 100, 110, 120, 123])),
        Scenario::new(
            "per-channel clusters (one cluster per channel)",
            base_channels,
            nodes,
            DeploymentSpec::Clustered {
                field_radius_m: 55.0,
                cluster_radius_m: 6.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous),
    ];

    println!(
        "\n# Ablation 5 — deployment scenarios beyond the paper \
         ({base_channels} channels × {nodes} nodes, {sim_superframes} superframes × {reps} reps, {} threads)",
        runner.threads()
    );
    println!("scenario,power_uW,power_se_uW,fail_pct,fail_se_pct,delay_s,ch_power_min_uW,ch_power_max_uW,worst_ch_fail_pct");
    for scenario in scenarios {
        let outcome = scenario
            .with_superframes(sim_superframes)
            .with_replications(reps)
            .run(&runner);
        let o = &outcome.overall;
        let (lo, hi) = outcome.power_spread_uw();
        let (_, worst) = outcome.worst_channel();
        println!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.1},{:.1}",
            outcome.name,
            o.mean_node_power.microwatts(),
            o.power_standard_error.microwatts(),
            o.failure_ratio.value() * 100.0,
            o.failure_standard_error * 100.0,
            o.mean_delay.secs(),
            lo,
            hi,
            worst.failure_ratio.value() * 100.0
        );
    }
    println!(
        "⇒ stratifying channels by distance narrows each channel's link \
         budget spread; heterogeneous loads move the failure floor per \
         channel — conclusions the uniform-population model cannot express."
    );

    // Ablation 6 — closed-loop channel assignment on the two scenarios
    // where the static split is worst: ring-stratified (outer channels
    // saturate) and clustered (per-cluster link budgets differ). Round
    // positions align across policies, so each row isolates the policy.
    let rounds = args.rounds_or(4) as usize;
    let policy_scenarios = [
        Scenario::new(
            "ring-stratified disc",
            base_channels,
            nodes,
            DeploymentSpec::Disc {
                radius_m: 60.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified),
        Scenario::new(
            "per-channel clusters",
            base_channels,
            nodes,
            DeploymentSpec::Clustered {
                field_radius_m: 55.0,
                cluster_radius_m: 6.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous),
    ];

    println!(
        "\n# Ablation 6 — adaptive channel assignment \
         ({base_channels} channels × {nodes} nodes, {sim_superframes} superframes × {reps} reps × {rounds} rounds)"
    );
    println!("scenario,policy,worst_fail_round0_pct,worst_fail_final_pct,power_final_uW,rounds_to_stabilize,total_moved");
    for scenario in policy_scenarios {
        let engine = PolicyEngine::new(
            scenario
                .clone()
                .with_superframes(sim_superframes)
                .with_replications(reps),
        )
        .with_rounds(rounds)
        .run_all_rounds();
        let mut policies: [Box<dyn AllocationPolicy>; 3] = [
            Box::new(StaticAllocation),
            Box::new(GreedyRebalance::new(8)),
            Box::new(ProportionalFair::default()),
        ];
        for policy in policies.iter_mut() {
            let trace = engine.run(&runner, policy.as_mut());
            println!(
                "{},{},{:.2},{:.2},{:.1},{},{}",
                scenario.name,
                trace.policy,
                trace.rounds[0].worst_failure() * 100.0,
                trace.final_round().worst_failure() * 100.0,
                trace
                    .final_round()
                    .outcome
                    .overall
                    .mean_node_power
                    .microwatts(),
                trace
                    .rounds_to_stabilize()
                    .map_or("never".to_string(), |r| r.to_string()),
                trace.rounds.iter().map(|r| r.moved).sum::<usize>()
            );
        }
    }
    println!(
        "⇒ feedback re-allocation drains the saturated channels the static \
         split leaves overloaded — load balancing from per-channel failure \
         statistics alone, no per-node state."
    );
}
