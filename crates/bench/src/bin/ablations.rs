//! Experiment ABLA — ablations of the design choices DESIGN.md calls out:
//!
//! 1. **CSMA parameter presets**: the standard's macMaxCSMABackoffs = 4
//!    versus the paper's literal "abort after two BE increments" reading,
//!    versus battery-life-extension mode (which the paper rejects for
//!    dense networks — we quantify the collision blow-up);
//! 2. **Arrival pattern**: staggered packet readiness versus all nodes
//!    contending right after the beacon (the literal prose);
//! 3. **Contention source**: Monte-Carlo versus the closed-form
//!    [`AnalyticContention`] extension versus the ideal channel;
//! 4. **GTS capacity**: why guaranteed time slots cannot serve the dense
//!    scenario.
//!
//! Usage: `cargo run --release -p wsn-bench --bin ablations [superframes] [--threads N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::{
    AnalyticContention, ContentionModel, IdealContention, MonteCarloContention,
};
use wsn_mac::csma::CsmaParams;
use wsn_mac::gts::max_gts_devices;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;
use wsn_sim::ChannelSimConfig;

fn main() {
    let args = RunArgs::parse(50);
    let superframes = args.superframes;
    let runner = args.runner();

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let load = study.load();
    let ber = EmpiricalCc2420Ber::paper();

    // Ablations 1 and 2 are independent simulations: one sweep on the
    // parallel runner covers all five configurations.
    let presets = [
        ("standard_2003 (5 rounds)", CsmaParams::standard_2003()),
        ("paper literal (3 rounds)", CsmaParams::paper()),
        (
            "battery-life-extension",
            CsmaParams::battery_life_extension(),
        ),
    ];
    let arrivals = [("staggered (used)", false), ("beacon-synchronized", true)];
    let mut configs = Vec::new();
    for (_, params) in presets {
        let mut cfg = ChannelSimConfig::figure6(120, load, 0xAB1A);
        cfg.csma = params;
        cfg.superframes = superframes;
        configs.push(cfg);
    }
    for (_, synced) in arrivals {
        let mut cfg = ChannelSimConfig::figure6(120, load, 0xAB1B);
        cfg.synchronized_arrivals = synced;
        cfg.superframes = superframes;
        configs.push(cfg);
    }
    let sweep = runner.sweep_contention(&configs);

    println!("# Ablation 1 — CSMA parameter presets at the case-study load (λ={load:.2})");
    println!("preset,T_cont_ms,N_CCA,Pr_col,Pr_cf");
    for ((name, _), s) in presets.iter().zip(&sweep) {
        println!(
            "{name},{:.2},{:.2},{:.4},{:.4}",
            s.mean_contention.millis(),
            s.mean_ccas,
            s.pr_collision.value(),
            s.pr_access_failure.value()
        );
    }

    println!("\n# Ablation 2 — arrival pattern at the case-study load");
    println!("arrivals,T_cont_ms,N_CCA,Pr_col,Pr_cf");
    for ((name, _), s) in arrivals.iter().zip(&sweep[presets.len()..]) {
        println!(
            "{name},{:.2},{:.2},{:.4},{:.4}",
            s.mean_contention.millis(),
            s.mean_ccas,
            s.pr_collision.value(),
            s.pr_access_failure.value()
        );
    }

    println!("\n# Ablation 3 — contention source for the full case study");
    println!("source,power_uW,fail_pct,delay_s");
    let mc = MonteCarloContention::figure6().with_superframes(superframes);
    mc.prewarm(&runner, &[(study.load(), study.packet())]);
    let analytic = AnalyticContention::new();
    let sources: [(&str, &dyn ContentionModel); 3] = [
        ("monte-carlo", &mc),
        ("analytic fixed-point", &analytic),
        ("ideal channel", &IdealContention),
    ];
    for (name, source) in sources {
        let report = study.run(&ber, &source);
        println!(
            "{name},{:.1},{:.1},{:.2}",
            report.average_power.microwatts(),
            report.mean_failure.value() * 100.0,
            report.mean_delay.secs()
        );
    }

    println!("\n# Ablation 4 — GTS capacity versus the dense scenario");
    let nodes = study.nodes_per_channel();
    println!(
        "guaranteed time slots per superframe : {} devices",
        max_gts_devices()
    );
    println!("nodes sharing each channel           : {nodes}");
    println!(
        "coverage if GTS were used            : {:.1} % of nodes",
        max_gts_devices() as f64 / nodes as f64 * 100.0
    );
    println!(
        "⇒ the contention access period is unavoidable in this regime, as \
         the paper argues in §2."
    );
}
