//! Experiment FAULTS — graceful degradation under node churn and
//! coordinator outages.
//!
//! The paper's energy model assumes a static association: every node
//! joined once, before time zero, and the coordinator never misses a
//! beacon. Deployed 802.15.4 networks see neither — batteries die, nodes
//! are replaced, and the coordinator itself browns out. This experiment
//! sweeps the fault plan (`wsn_sim::faults`) on two axes:
//!
//! * **churn rate** — per-node, per-superframe death probability; dead
//!   nodes rejoin through the real association machine (orphan scan,
//!   bounded retries, dormancy on exhaustion), every joule of it billed
//!   to the `Association` ledger phase;
//! * **outage duration** — superframes of coordinator silence per outage
//!   event, during which alive nodes burn orphan-scan listens and GTS
//!   holders lose their descriptors to the reallocation pass.
//!
//! The headline is the **degradation curve**: delivery ratio and µJ per
//! *delivered* packet versus churn. A robust stack degrades smoothly —
//! delivery falls with churn, unit energy rises as orphan scans and
//! re-association exchanges are amortized over fewer deliveries — with
//! no cliff and no livelock (retries are bounded, so the dormant count
//! caps the join traffic).
//!
//! With `--json`, the sweep is written to `BENCH_faults.json` — per-point
//! wall-clock, a serial-reference speedup and `host_cpus` — mirroring
//! `BENCH_cfp.json`'s schema.
//!
//! Usage: `cargo run --release -p wsn-bench --bin churn_study [superframes] [--threads N] [--reps N] [--json]`

use wsn_bench::{elapsed_ms, export_scenario_file, Json, RunArgs, BENCH_FAULTS_PATH};
use wsn_sim::scenario::{DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::{FaultPlan, Runner, ScenarioOutcome};

const CHANNELS: usize = 3;
const NODES_PER_CHANNEL: usize = 12;
/// Per-node, per-superframe death probability.
const DEATH_RATES: [f64; 5] = [0.0, 0.01, 0.03, 0.06, 0.10];
/// Coordinator-outage duration in superframes (0 = outages disabled).
const OUTAGE_SF: [u32; 2] = [0, 2];
/// Per-superframe outage probability whenever outages are enabled.
const OUTAGE_RATE: f64 = 0.10;
/// Superframes a dead node stays down before its first rejoin attempt.
const REJOIN_DELAY: u32 = 1;
/// Join attempts before a node gives up and goes dormant.
const MAX_JOIN_RETRIES: u32 = 3;

fn scenario(death_rate: f64, outage_sf: u32, superframes: u32, reps: u32) -> Scenario {
    let mut faults = FaultPlan::inert();
    if death_rate > 0.0 {
        faults = faults.with_churn(death_rate, REJOIN_DELAY, MAX_JOIN_RETRIES);
    }
    if outage_sf > 0 {
        faults = faults.with_outages(OUTAGE_RATE, outage_sf);
    }
    Scenario::new(
        format!("churn{death_rate}-out{outage_sf}"),
        CHANNELS,
        NODES_PER_CHANNEL,
        DeploymentSpec::UniformLossGrid {
            min_db: 55.0,
            max_db: 90.0,
        },
    )
    // GTS + downlink traffic so churn also exercises descriptor
    // reallocation and poll scheduling, not just the CAP.
    .with_traffic(TrafficSpec::uniform(120).with_gts(1).with_downlink(0.3))
    .with_beacon_order(wsn_mac::BeaconOrder::new(3).expect("BO 3 valid"))
    .with_faults(faults)
    .with_superframes(superframes)
    .with_replications(reps)
}

struct SweepPoint {
    death_rate: f64,
    outage_sf: u32,
    outcome: ScenarioOutcome,
    wall_ms: f64,
}

impl SweepPoint {
    fn delivery_ratio(&self) -> f64 {
        1.0 - self.outcome.overall.failure_ratio.value()
    }
}

fn run_sweep(runner: &Runner, superframes: u32, reps: u32) -> (Vec<SweepPoint>, f64) {
    let t0 = std::time::Instant::now();
    let mut points = Vec::new();
    for &out_sf in &OUTAGE_SF {
        for &death in &DEATH_RATES {
            let s = scenario(death, out_sf, superframes, reps);
            let timed = s.run_compiled_timed(runner, &s.compile());
            points.push(SweepPoint {
                death_rate: death,
                outage_sf: out_sf,
                outcome: timed.outcome,
                wall_ms: timed.wall_ms,
            });
        }
    }
    (points, elapsed_ms(t0))
}

fn main() {
    let args = RunArgs::parse(20);
    wsn_bench::init_metrics(&args);
    let reps = args.reps_or(3);

    // `--export-scenario`: write the sweep's max-stress point (highest
    // churn, outages on) as saved JSON — the fault-plan fixture for the
    // batch service — instead of running the sweep.
    if let Some(path) = &args.export_scenario {
        let death = DEATH_RATES[DEATH_RATES.len() - 1];
        let out_sf = OUTAGE_SF[OUTAGE_SF.len() - 1];
        let s = scenario(death, out_sf, args.superframes, reps);
        export_scenario_file(path, &wsn_sim::SavedScenario::open_loop(s));
        return;
    }

    let runner = args.runner();

    println!(
        "# churn / outage study — {CHANNELS} channels × {NODES_PER_CHANNEL} nodes, \
         BO 3, {} superframes × {reps} reps ({} threads)",
        args.superframes,
        runner.threads()
    );
    let (points, wall_ms) = run_sweep(&runner, args.superframes, reps);

    println!(
        "\ndeath_rate,outage_sf,delivery_pct,power_uW,uj_per_pkt,deaths,orphan_scans,\
         join_attempts,join_fail_pct,reassoc_s,dormant"
    );
    for p in &points {
        let o = &p.outcome.overall;
        println!(
            "{:.2},{},{:.1},{:.1},{:.2},{},{},{},{:.1},{:.3},{}",
            p.death_rate,
            p.outage_sf,
            p.delivery_ratio() * 100.0,
            o.mean_node_power.microwatts(),
            o.energy_per_delivered_packet_uj,
            o.deaths,
            o.orphan_scans,
            o.join_attempts,
            o.join_failure_ratio.value() * 100.0,
            o.mean_reassociation_delay.secs(),
            o.dormant_nodes,
        );
    }

    println!("\n## readings");
    for &out_sf in &OUTAGE_SF {
        let curve: Vec<&SweepPoint> =
            points.iter().filter(|p| p.outage_sf == out_sf).collect();
        let clean = curve.first().expect("sweep covers death_rate 0");
        let worst = curve.last().expect("sweep covers the max churn rate");
        println!(
            "outage={out_sf} sf: delivery {:.1} % → {:.1} % and {:.2} → {:.2} µJ/pkt \
             as churn rises 0 → {:.0} %/sf ({} deaths, {} dormant at the top)",
            clean.delivery_ratio() * 100.0,
            worst.delivery_ratio() * 100.0,
            clean.outcome.overall.energy_per_delivered_packet_uj,
            worst.outcome.overall.energy_per_delivered_packet_uj,
            worst.death_rate * 100.0,
            worst.outcome.overall.deaths,
            worst.outcome.overall.dormant_nodes,
        );
        let monotone_deaths = curve.windows(2).all(|w| {
            w[0].outcome.overall.deaths <= w[1].outcome.overall.deaths
        });
        let bounded_joins = curve.iter().all(|p| {
            p.outcome.overall.join_attempts
                <= p.outcome.overall.deaths * (MAX_JOIN_RETRIES as u64 + 1)
        });
        println!(
            "  deaths monotone in churn: {monotone_deaths}; join attempts bounded by \
             deaths × (retries+1): {bounded_joins}"
        );
    }

    if args.json {
        // Serial reference pass (always real, as in `gts_study`): the
        // sweep is small, so the recorded speedup stays comparable
        // across hosts.
        let serial_wall_ms = {
            let (_, ms) = run_sweep(&Runner::serial(), args.superframes, reps);
            ms
        };
        let json_points: Vec<Json> = points
            .iter()
            .map(|p| {
                let o = &p.outcome.overall;
                Json::Obj(vec![
                    ("death_rate", Json::Num(p.death_rate)),
                    ("outage_superframes", Json::Int(p.outage_sf as i64)),
                    ("wall_ms", Json::Num(p.wall_ms)),
                    ("delivery_ratio", Json::Num(p.delivery_ratio())),
                    ("power_uw", Json::Num(o.mean_node_power.microwatts())),
                    (
                        "power_se_uw",
                        Json::Num(o.power_standard_error.microwatts()),
                    ),
                    (
                        "uj_per_delivered_packet",
                        Json::Num(o.energy_per_delivered_packet_uj),
                    ),
                    ("deaths", Json::Int(o.deaths as i64)),
                    ("orphan_scans", Json::Int(o.orphan_scans as i64)),
                    ("join_attempts", Json::Int(o.join_attempts as i64)),
                    (
                        "join_failure_ratio",
                        Json::Num(o.join_failure_ratio.value()),
                    ),
                    (
                        "reassociation_delay_s",
                        Json::Num(o.mean_reassociation_delay.secs()),
                    ),
                    ("dormant_nodes", Json::Int(o.dormant_nodes as i64)),
                    ("gts_transactions", Json::Int(o.gts_transactions as i64)),
                    ("downlink_polls", Json::Int(o.downlink_polls as i64)),
                ])
            })
            .collect();
        let baseline = &points[0];
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("churn_study_faults".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("replications", Json::Int(reps as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("channels", Json::Int(CHANNELS as i64)),
            ("nodes_per_channel", Json::Int(NODES_PER_CHANNEL as i64)),
            ("outage_rate", Json::Num(OUTAGE_RATE)),
            ("rejoin_delay_superframes", Json::Int(REJOIN_DELAY as i64)),
            ("max_join_retries", Json::Int(MAX_JOIN_RETRIES as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("serial_wall_ms", Json::Num(serial_wall_ms)),
            ("speedup_vs_serial", Json::Num(serial_wall_ms / wall_ms)),
            (
                "baseline_delivery_ratio",
                Json::Num(baseline.delivery_ratio()),
            ),
            (
                "baseline_uj_per_packet",
                Json::Num(baseline.outcome.overall.energy_per_delivered_packet_uj),
            ),
            ("points", Json::Arr(json_points)),
        ]);
        std::fs::write(BENCH_FAULTS_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_FAULTS_PATH}");
    }
    wsn_bench::finish_metrics(&args);
}
