//! Experiment IMPR — reproduces the paper's improvement perspectives:
//!
//! * halving all state-transition times ("would decrease the total average
//!   power by 12 %");
//! * a scalable receiver with a low-power listen mode for CCA and ACK wait
//!   ("potential of reducing the total average power by an additional
//!   15 %").
//!
//! Usage: `cargo run --release -p wsn-bench --bin improvements [superframes]`

use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::MonteCarloContention;
use wsn_core::improvements::{
    combined_radio, evaluate_variant, faster_transitions_radio, scalable_receiver_radio,
};
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;

fn main() {
    let superframes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6().with_superframes(superframes);

    println!("# Improvement perspectives (case-study what-ifs)");
    println!("\nvariant,power_uW,reduction_pct,paper_claim_pct");
    for (name, radio, claim) in [
        ("transitions ×0.5", faster_transitions_radio(0.5), "12"),
        (
            "scalable receiver ×0.5 listen",
            scalable_receiver_radio(0.5),
            "15 (additional)",
        ),
        (
            "scalable receiver ×0.25 listen",
            scalable_receiver_radio(0.25),
            "-",
        ),
        ("combined (×0.5, ×0.5)", combined_radio(0.5, 0.5), "-"),
        ("combined (×0.5, ×0.25)", combined_radio(0.5, 0.25), "-"),
    ] {
        let r = evaluate_variant(&study, radio, &ber, &mc);
        println!(
            "{name},{:.1},{:.1},{claim}",
            r.variant.microwatts(),
            r.reduction() * 100.0
        );
    }
    let baseline = study.run(&ber, &mc);
    println!(
        "\nbaseline power: {:.1} µW (paper: 211 µW)",
        baseline.average_power.microwatts()
    );
}
