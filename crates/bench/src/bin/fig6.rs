//! Experiment FIG6 — reproduces paper Figure 6: behaviour of the slotted
//! CSMA/CA algorithm versus network load for packet payloads of 10, 20, 50
//! and 100 bytes (100 nodes per channel).
//!
//! Prints one CSV block per metric — mean contention duration, mean number
//! of CCAs, collision probability and channel-access-failure probability —
//! as `value±stderr` cells: the standard error of the means comes from the
//! merged per-procedure accumulators, the probability errors are binomial.
//! `--reps N` merges N independent replications per point (seeds derived
//! with the splitmix scheme) for tighter errors.
//!
//! The `points × reps` grid runs as independent simulations on the
//! parallel [`Runner`]; results are bit-identical to the serial sweep.
//!
//! With `--json`, per-point wall-clock and statistics — plus a serial
//! reference timing and the resulting speedup — are written to
//! `BENCH_contention.json` so the performance trajectory is machine
//! readable across PRs.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig6 [superframes] [--threads N] [--reps N] [--json]`

use std::time::Instant;

use wsn_bench::{elapsed_ms, Json, RunArgs};
use wsn_sim::contention::run_channel_sim_into;
use wsn_sim::{replication_seed, ChannelSimConfig, Runner, StatsSink};

fn configs_for(payloads: &[usize], loads: &[f64], superframes: u32) -> Vec<ChannelSimConfig> {
    let mut configs = Vec::with_capacity(payloads.len() * loads.len());
    for &payload in payloads {
        for &load in loads {
            let mut cfg = ChannelSimConfig::figure6(payload, load, 0xF166 + payload as u64);
            cfg.superframes = superframes;
            configs.push(cfg);
        }
    }
    configs
}

/// Runs the sweep with `reps` replications per point, timing each job;
/// returns `(merged_sink, point_wall_ms)` in config order plus the total
/// wall-clock in milliseconds. Replication 0 keeps the point's base seed
/// so a single-replication sweep matches the pre-replication outputs;
/// further replications derive their seeds with [`replication_seed`].
fn timed_sweep(
    runner: &Runner,
    configs: &[ChannelSimConfig],
    reps: u32,
) -> (Vec<(StatsSink, f64)>, f64) {
    let t0 = Instant::now();
    let shards = runner.map_replicated(configs, reps, |_, base, r| {
        let t = Instant::now();
        let mut cfg = base.clone();
        if r > 0 {
            cfg.seed = replication_seed(base.seed, r);
        }
        let timings = cfg.timings();
        let mut sink = StatsSink::new();
        run_channel_sim_into(&cfg, &timings, |_| false, &mut sink);
        (sink, elapsed_ms(t))
    });
    let rows = shards
        .into_iter()
        .map(|point_shards| {
            let mut merged = StatsSink::new();
            let mut ms = 0.0;
            for (sink, shard_ms) in &point_shards {
                merged.merge(sink);
                ms += shard_ms;
            }
            (merged, ms)
        })
        .collect();
    let total = elapsed_ms(t0);
    (rows, total)
}

fn main() {
    let args = RunArgs::parse(60);
    wsn_bench::init_metrics(&args);
    let runner = args.runner();
    let reps = args.reps_or(1);

    let payloads = [10usize, 20, 50, 100];
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let configs = configs_for(&payloads, &loads, args.superframes);

    let (rows, wall_ms) = timed_sweep(&runner, &configs, reps);

    println!("# Figure 6 — slotted CSMA/CA behaviour, 100 nodes/channel");
    println!(
        "# ({} superframes per point, {} replication(s), standard CSMA parameters, {} threads, {:.0} ms)",
        args.superframes,
        reps,
        runner.threads(),
        wall_ms
    );
    type Cell = Box<dyn Fn(&StatsSink) -> (f64, f64)>;
    for (title, f) in [
        (
            "mean contention duration T_cont [ms] (±stderr)",
            Box::new(|s: &StatsSink| {
                (
                    s.contention.contention_us.mean() / 1e3,
                    s.contention.contention_us.standard_error() / 1e3,
                )
            }) as Cell,
        ),
        (
            "mean CCAs per procedure N_CCA (±stderr)",
            Box::new(|s: &StatsSink| {
                (s.contention.ccas.mean(), s.contention.ccas.standard_error())
            }),
        ),
        (
            "collision probability Pr_col (±binomial stderr)",
            Box::new(|s: &StatsSink| {
                (
                    s.contention.collisions.ratio().value(),
                    s.contention.collisions.standard_error(),
                )
            }),
        ),
        (
            "channel access failure probability Pr_cf (±binomial stderr)",
            Box::new(|s: &StatsSink| {
                (
                    s.contention.access_failures.ratio().value(),
                    s.contention.access_failures.standard_error(),
                )
            }),
        ),
    ] {
        println!("\n## {title}");
        print!("load");
        for &p in &payloads {
            print!(",{p}B");
        }
        println!();
        for (load_idx, &load) in loads.iter().enumerate() {
            print!("{load:.2}");
            for payload_idx in 0..payloads.len() {
                // Rows are laid out payload-major by construction.
                let (sink, _) = &rows[payload_idx * loads.len() + load_idx];
                let (value, se) = f(sink);
                print!(",{value:.4}±{se:.4}");
            }
            println!();
        }
    }

    if args.json {
        // Serial reference pass for the recorded speedup (skipped when the
        // sweep already ran single-threaded — it would be the same run).
        let (serial_wall_ms, speedup) = if runner.threads() > 1 {
            let (_, serial_ms) = timed_sweep(&Runner::serial(), &configs, reps);
            (Json::Num(serial_ms), Json::Num(serial_ms / wall_ms))
        } else {
            (Json::Null, Json::Null)
        };

        let points: Vec<Json> = configs
            .iter()
            .zip(&rows)
            .map(|(cfg, (sink, point_ms))| {
                let stats = sink.contention_stats();
                Json::Obj(vec![
                    ("payload_bytes", Json::Int(cfg.packet.payload_bytes() as i64)),
                    ("load", Json::Num(cfg.load)),
                    ("wall_ms", Json::Num(*point_ms)),
                    ("t_cont_ms", Json::Num(stats.mean_contention.millis())),
                    (
                        "t_cont_se_ms",
                        Json::Num(sink.contention.contention_us.standard_error() / 1e3),
                    ),
                    ("n_cca", Json::Num(stats.mean_ccas)),
                    (
                        "n_cca_se",
                        Json::Num(sink.contention.ccas.standard_error()),
                    ),
                    ("pr_col", Json::Num(stats.pr_collision.value())),
                    (
                        "pr_col_se",
                        Json::Num(sink.contention.collisions.standard_error()),
                    ),
                    ("pr_cf", Json::Num(stats.pr_access_failure.value())),
                    (
                        "pr_cf_se",
                        Json::Num(sink.contention.access_failures.standard_error()),
                    ),
                    ("procedures", Json::Int(stats.procedures as i64)),
                ])
            })
            .collect();

        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("fig6_contention_sweep".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("replications", Json::Int(reps as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("points_total", Json::Int(points.len() as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("serial_wall_ms", serial_wall_ms),
            ("speedup_vs_serial", speedup),
            ("points", Json::Arr(points)),
        ]);
        let path = "BENCH_contention.json";
        std::fs::write(path, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    wsn_bench::finish_metrics(&args);
}
