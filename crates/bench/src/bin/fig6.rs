//! Experiment FIG6 — reproduces paper Figure 6: behaviour of the slotted
//! CSMA/CA algorithm versus network load for packet payloads of 10, 20, 50
//! and 100 bytes (100 nodes per channel).
//!
//! Prints one CSV block per metric: mean contention duration, mean number
//! of CCAs, collision probability and channel-access-failure probability.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig6 [superframes]`

use wsn_sim::{simulate_contention, ChannelSimConfig};

fn main() {
    let superframes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let payloads = [10usize, 20, 50, 100];
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();

    let mut rows = Vec::new();
    for &payload in &payloads {
        for &load in &loads {
            let mut cfg = ChannelSimConfig::figure6(payload, load, 0xF166 + payload as u64);
            cfg.superframes = superframes;
            let stats = simulate_contention(&cfg);
            rows.push((payload, load, stats));
        }
    }

    println!("# Figure 6 — slotted CSMA/CA behaviour, 100 nodes/channel");
    println!(
        "# ({} superframes per point, standard CSMA parameters)",
        superframes
    );
    for (title, f) in [
        (
            "mean contention duration T_cont [ms]",
            Box::new(|s: &wsn_sim::ContentionStats| s.mean_contention.millis())
                as Box<dyn Fn(&wsn_sim::ContentionStats) -> f64>,
        ),
        (
            "mean CCAs per procedure N_CCA",
            Box::new(|s: &wsn_sim::ContentionStats| s.mean_ccas),
        ),
        (
            "collision probability Pr_col",
            Box::new(|s: &wsn_sim::ContentionStats| s.pr_collision.value()),
        ),
        (
            "channel access failure probability Pr_cf",
            Box::new(|s: &wsn_sim::ContentionStats| s.pr_access_failure.value()),
        ),
    ] {
        println!("\n## {title}");
        print!("load");
        for &p in &payloads {
            print!(",{p}B");
        }
        println!();
        for &load in &loads {
            print!("{load:.2}");
            for &p in &payloads {
                let s = &rows
                    .iter()
                    .find(|(pp, ll, _)| *pp == p && (*ll - load).abs() < 1e-9)
                    .expect("row exists")
                    .2;
                print!(",{:.4}", f(s));
            }
            println!();
        }
    }
}
