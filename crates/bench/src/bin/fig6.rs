//! Experiment FIG6 — reproduces paper Figure 6: behaviour of the slotted
//! CSMA/CA algorithm versus network load for packet payloads of 10, 20, 50
//! and 100 bytes (100 nodes per channel).
//!
//! Prints one CSV block per metric: mean contention duration, mean number
//! of CCAs, collision probability and channel-access-failure probability.
//! The 72 parameter points are independent simulations and run on the
//! parallel [`Runner`]; results are bit-identical to the serial sweep.
//!
//! With `--json`, per-point wall-clock and statistics — plus a serial
//! reference timing and the resulting speedup — are written to
//! `BENCH_contention.json` so the performance trajectory is machine
//! readable across PRs.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig6 [superframes] [--threads N] [--json]`

use std::time::Instant;

use wsn_bench::{elapsed_ms, Json, RunArgs};
use wsn_sim::{ChannelSimConfig, ContentionStats, Runner};

fn configs_for(payloads: &[usize], loads: &[f64], superframes: u32) -> Vec<ChannelSimConfig> {
    let mut configs = Vec::with_capacity(payloads.len() * loads.len());
    for &payload in payloads {
        for &load in loads {
            let mut cfg = ChannelSimConfig::figure6(payload, load, 0xF166 + payload as u64);
            cfg.superframes = superframes;
            configs.push(cfg);
        }
    }
    configs
}

/// Runs the sweep, timing each point; returns `(stats, point_wall_ms)` in
/// config order plus the total wall-clock in milliseconds.
fn timed_sweep(runner: &Runner, configs: &[ChannelSimConfig]) -> (Vec<(ContentionStats, f64)>, f64) {
    let t0 = Instant::now();
    let rows = runner.map(configs, |_, cfg| {
        let t = Instant::now();
        let stats = wsn_sim::simulate_contention(cfg);
        (stats, elapsed_ms(t))
    });
    let total = elapsed_ms(t0);
    (rows, total)
}

fn main() {
    let args = RunArgs::parse(60);
    let runner = args.runner();

    let payloads = [10usize, 20, 50, 100];
    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let configs = configs_for(&payloads, &loads, args.superframes);

    let (rows, wall_ms) = timed_sweep(&runner, &configs);

    println!("# Figure 6 — slotted CSMA/CA behaviour, 100 nodes/channel");
    println!(
        "# ({} superframes per point, standard CSMA parameters, {} threads, {:.0} ms)",
        args.superframes,
        runner.threads(),
        wall_ms
    );
    for (title, f) in [
        (
            "mean contention duration T_cont [ms]",
            Box::new(|s: &ContentionStats| s.mean_contention.millis())
                as Box<dyn Fn(&ContentionStats) -> f64>,
        ),
        (
            "mean CCAs per procedure N_CCA",
            Box::new(|s: &ContentionStats| s.mean_ccas),
        ),
        (
            "collision probability Pr_col",
            Box::new(|s: &ContentionStats| s.pr_collision.value()),
        ),
        (
            "channel access failure probability Pr_cf",
            Box::new(|s: &ContentionStats| s.pr_access_failure.value()),
        ),
    ] {
        println!("\n## {title}");
        print!("load");
        for &p in &payloads {
            print!(",{p}B");
        }
        println!();
        for (load_idx, &load) in loads.iter().enumerate() {
            print!("{load:.2}");
            for payload_idx in 0..payloads.len() {
                // Rows are laid out payload-major by construction.
                let (stats, _) = &rows[payload_idx * loads.len() + load_idx];
                print!(",{:.4}", f(stats));
            }
            println!();
        }
    }

    if args.json {
        // Serial reference pass for the recorded speedup (skipped when the
        // sweep already ran single-threaded — it would be the same run).
        let (serial_wall_ms, speedup) = if runner.threads() > 1 {
            let (_, serial_ms) = timed_sweep(&Runner::serial(), &configs);
            (Json::Num(serial_ms), Json::Num(serial_ms / wall_ms))
        } else {
            (Json::Null, Json::Null)
        };

        let points: Vec<Json> = configs
            .iter()
            .zip(&rows)
            .map(|(cfg, (stats, point_ms))| {
                Json::Obj(vec![
                    ("payload_bytes", Json::Int(cfg.packet.payload_bytes() as i64)),
                    ("load", Json::Num(cfg.load)),
                    ("wall_ms", Json::Num(*point_ms)),
                    ("t_cont_ms", Json::Num(stats.mean_contention.millis())),
                    ("n_cca", Json::Num(stats.mean_ccas)),
                    ("pr_col", Json::Num(stats.pr_collision.value())),
                    ("pr_cf", Json::Num(stats.pr_access_failure.value())),
                    ("procedures", Json::Int(stats.procedures as i64)),
                ])
            })
            .collect();

        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("fig6_contention_sweep".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            ("points_total", Json::Int(points.len() as i64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("serial_wall_ms", serial_wall_ms),
            ("speedup_vs_serial", speedup),
            ("points", Json::Arr(points)),
        ]);
        let path = "BENCH_contention.json";
        std::fs::write(path, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
}
