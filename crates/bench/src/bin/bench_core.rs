//! Experiment CORE — hot-loop throughput of the discrete-event core.
//!
//! Everything in this reproduction funnels through one engine loop
//! (`run_channel_sim_into_ws`), so this binary measures that loop as
//! directly as possible and writes the numbers to `BENCH_core.json`,
//! giving the performance trajectory a machine-readable trail across PRs:
//!
//! 1. **Contention grid** — a fixed payloads × loads Figure-6-style grid
//!    run *serially on one explicit workspace*, counting the events the
//!    engine processed: `events_per_sec` is the core throughput metric,
//!    free of thread-pool and reduction overhead.
//! 2. **Policy round** — one closed-loop round of the adaptive
//!    ring-stratified scenario (the policy layer's per-round cost:
//!    compile → grid → reduce → decide), timed end to end.
//! 3. **Telemetry cost** — the same grid re-run with
//!    [`wsn_sim::telemetry`] *enabled* (best of three), asserting the
//!    event count is unchanged (telemetry is inert) and reporting the
//!    enabled-path overhead. The main `events_per_sec` number is always
//!    measured with telemetry disabled, so the committed baseline also
//!    guards the disabled hot-path cost (a branch on an `Option`
//!    handle) against regression.
//!
//! CI regenerates the document on every push and diffs `events_per_sec`
//! against the committed baseline as a *warn-only* gate: host noise never
//! fails the build, but a persistent regression annotates the run.
//!
//! Usage: `cargo run --release -p wsn-bench --bin bench_core [superframes] [--threads N] [--rounds N] [--json]`

use std::time::Instant;

use wsn_bench::{elapsed_ms, Json, RunArgs, BENCH_CORE_PATH};
use wsn_sim::contention::run_channel_sim_into_ws;
use wsn_sim::policy::{GreedyRebalance, PolicyEngine};
use wsn_sim::scenario::{ChannelAllocation, DeploymentSpec, Scenario};
use wsn_sim::{ChannelSimConfig, SimWorkspace, StatsSink};

/// The fixed contention grid: 3 payloads × 4 loads, 100 nodes each. Fixed
/// so `events_per_sec` is comparable across PRs at equal `superframes`.
fn grid(superframes: u32) -> Vec<ChannelSimConfig> {
    let payloads = [20usize, 50, 100];
    let loads = [0.2, 0.4, 0.6, 0.8];
    let mut configs = Vec::with_capacity(payloads.len() * loads.len());
    for &payload in &payloads {
        for &load in &loads {
            let mut cfg = ChannelSimConfig::figure6(payload, load, 0xC04E + payload as u64);
            cfg.superframes = superframes;
            configs.push(cfg);
        }
    }
    configs
}

/// The policy-round workload: the adaptive binary's ring-stratified
/// scenario, shrunk to one greedy round.
fn policy_scenario(superframes: u32) -> Scenario {
    Scenario::new(
        "bench-core ring-stratified",
        8,
        100,
        DeploymentSpec::Disc {
            radius_m: 60.0,
            exponent: 3.0,
            shadowing_db: 4.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_superframes(superframes)
}

fn main() {
    let args = RunArgs::parse(40);
    let runner = args.runner();
    let rounds = args.rounds_or(1) as usize;

    // --- 1. serial engine throughput over the fixed grid ---------------
    // Best of three passes: the workload is deterministic, so per-pass
    // spread is pure host noise and the minimum is the cleanest estimate
    // of the loop's cost.
    let configs = grid(args.superframes);
    // The headline number is always the disabled hot path, even under
    // `--metrics`: the telemetry pass below measures the enabled cost.
    wsn_sim::telemetry::set_enabled(false);
    let mut ws = SimWorkspace::new();
    let mut total_events = 0u64;
    let mut total_procedures = 0u64;
    let mut grid_wall_ms = f64::INFINITY;
    for pass in 0..3 {
        let mut events = 0u64;
        let mut procedures = 0u64;
        let t0 = Instant::now();
        for cfg in &configs {
            let timings = cfg.timings();
            let mut sink = StatsSink::new();
            events += run_channel_sim_into_ws(cfg, &timings, |_| false, &mut sink, &mut ws);
            procedures += sink.contention_stats().procedures;
        }
        grid_wall_ms = grid_wall_ms.min(elapsed_ms(t0));
        if pass == 0 {
            total_events = events;
            total_procedures = procedures;
        } else {
            assert_eq!(total_events, events, "deterministic workload");
        }
    }
    let events_per_sec = total_events as f64 / (grid_wall_ms / 1e3);

    // --- 1b. the same grid with telemetry enabled ----------------------
    // Asserts the inertness contract (identical event count) and prices
    // the enabled path; best of three like the disabled measurement.
    wsn_sim::telemetry::set_enabled(true);
    let mut telem_events = 0u64;
    let mut telem_wall_ms = f64::INFINITY;
    for pass in 0..3 {
        let mut events = 0u64;
        let t0 = Instant::now();
        for cfg in &configs {
            let timings = cfg.timings();
            let mut sink = StatsSink::new();
            events += run_channel_sim_into_ws(cfg, &timings, |_| false, &mut sink, &mut ws);
        }
        telem_wall_ms = telem_wall_ms.min(elapsed_ms(t0));
        if pass == 0 {
            telem_events = events;
        }
        assert_eq!(events, total_events, "telemetry must be inert");
    }
    wsn_sim::telemetry::set_enabled(args.metrics.is_some());
    let telem_events_per_sec = telem_events as f64 / (telem_wall_ms / 1e3);
    let telem_overhead_pct = (telem_wall_ms / grid_wall_ms - 1.0) * 100.0;

    // --- 2. one closed policy round ------------------------------------
    let scenario = policy_scenario(args.superframes.min(12));
    let engine = PolicyEngine::new(scenario.clone())
        .with_rounds(rounds)
        .run_all_rounds();
    let t1 = Instant::now();
    let trace = engine.run(&runner, &mut GreedyRebalance::new(8));
    let policy_wall_ms = elapsed_ms(t1);

    println!("# Event-core hot loop ({} superframes/point)", args.superframes);
    println!(
        "contention grid : {} points, {} events, {:.1} ms ⇒ {:.0} events/s (serial, 1 workspace)",
        configs.len(),
        total_events,
        grid_wall_ms,
        events_per_sec
    );
    println!(
        "policy round(s) : {} × ({} channels × {} nodes), {:.1} ms ({} threads)",
        trace.rounds.len(),
        scenario.channels,
        scenario.nodes_per_channel,
        policy_wall_ms,
        runner.threads()
    );
    println!(
        "telemetry on    : {:.1} ms ⇒ {:.0} events/s ({:+.1}% vs disabled, events identical)",
        telem_wall_ms, telem_events_per_sec, telem_overhead_pct
    );

    if args.json {
        let doc = Json::Obj(vec![
            ("benchmark", Json::Str("core_event_loop".into())),
            ("superframes", Json::Int(args.superframes as i64)),
            ("threads", Json::Int(runner.threads() as i64)),
            (
                "host_cpus",
                Json::Int(
                    std::thread::available_parallelism()
                        .map(|n| n.get() as i64)
                        .unwrap_or(1),
                ),
            ),
            (
                "grid",
                Json::Obj(vec![
                    ("points", Json::Int(configs.len() as i64)),
                    ("events", Json::Int(total_events as i64)),
                    ("procedures", Json::Int(total_procedures as i64)),
                    ("wall_ms", Json::Num(grid_wall_ms)),
                    ("events_per_sec", Json::Num(events_per_sec)),
                ]),
            ),
            (
                "policy_round",
                Json::Obj(vec![
                    ("rounds", Json::Int(trace.rounds.len() as i64)),
                    ("channels", Json::Int(scenario.channels as i64)),
                    ("nodes", Json::Int(scenario.total_nodes() as i64)),
                    ("superframes", Json::Int(scenario.superframes as i64)),
                    ("wall_ms", Json::Num(policy_wall_ms)),
                ]),
            ),
            (
                "telemetry",
                Json::Obj(vec![
                    ("events", Json::Int(telem_events as i64)),
                    ("inert", Json::Bool(telem_events == total_events)),
                    ("wall_ms", Json::Num(telem_wall_ms)),
                    ("enabled_events_per_sec", Json::Num(telem_events_per_sec)),
                    ("enabled_overhead_pct", Json::Num(telem_overhead_pct)),
                ]),
            ),
        ]);
        std::fs::write(BENCH_CORE_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_CORE_PATH}");
    }
    wsn_bench::finish_metrics(&args);
}
