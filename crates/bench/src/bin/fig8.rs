//! Experiment FIG8 — reproduces paper Figure 8: energy per useful bit
//! versus packet payload size at several network loads.
//!
//! Paper observation to check: energy per bit decreases monotonically up to
//! the maximum 123-byte payload (the MAC overhead dominates), so buffering
//! to the largest packet is optimal.
//!
//! `--reps N` merges N independent contention replications per grid point
//! (exact fixed-order merges) before the model consumes them.
//!
//! Usage: `cargo run --release -p wsn-bench --bin fig8 [superframes] [--threads N] [--reps N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::contention::MonteCarloContention;
use wsn_core::packet_sizing::PacketSizing;
use wsn_mac::BeaconOrder;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_units::Db;

fn main() {
    let args = RunArgs::parse(40);

    // A representative mid-population link: 75 dB at −5 dBm.
    let study = PacketSizing::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        BeaconOrder::new(6).expect("valid"),
        TxPowerLevel::Neg5,
        Db::new(75.0),
    );
    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6()
        .with_superframes(args.superframes)
        .with_replications(args.reps_or(1));

    let payloads: Vec<usize> = (1..=12).map(|i| i * 10).chain([123]).collect();
    let loads = [0.1, 0.42, 0.7];

    // The full 13×3×reps (payload, load, replication) Monte-Carlo grid,
    // on the parallel runner — the dominant cost of this figure.
    let points: Vec<(f64, PacketLayout)> = loads
        .iter()
        .flat_map(|&l| {
            payloads
                .iter()
                .map(move |&p| (l, PacketLayout::with_payload(p).expect("within range")))
        })
        .collect();
    mc.prewarm(&args.runner(), &points);

    println!("# Figure 8 — energy per bit vs payload size (75 dB, −5 dBm)");
    println!("\npayload_bytes,e_bit_nj@0.10,e_bit_nj@0.42,e_bit_nj@0.70");
    let sweeps: Vec<_> = loads
        .iter()
        .map(|&l| study.sweep(&payloads, l, &ber, &mc))
        .collect();
    for (i, payload) in payloads.iter().enumerate() {
        println!(
            "{},{:.1},{:.1},{:.1}",
            payload,
            sweeps[0][i].energy_per_bit.nanojoules(),
            sweeps[1][i].energy_per_bit.nanojoules(),
            sweeps[2][i].energy_per_bit.nanojoules()
        );
    }

    for (load, sweep) in loads.iter().zip(&sweeps) {
        let best = PacketSizing::optimal_payload(sweep);
        println!("optimal payload at λ={load:.2}: {best} bytes  (paper: 123, the maximum)");
    }
}
