//! Experiment CASE — the paper's §5 dense-network case study.
//!
//! 1600 nodes / 16 channels (100 per channel), 1 byte per 8 ms per node
//! buffered into 120-byte packets, BO = 6 (T_ib = 983.04 ms), path losses
//! uniform in 55–95 dB, per-node energy-optimal transmit power.
//!
//! Two independent reproductions are printed:
//!
//! 1. the **analytical activation model** averaged over the loss
//!    population (with Monte-Carlo and ideal contention sources);
//! 2. the **discrete-event scenario**: the 16 channels × `--reps`
//!    replications run as independent parallel simulations on the runner
//!    and merge into a network-wide summary with replication-based
//!    standard errors. Output is bit-identical for every `--threads`
//!    value.
//!
//! Paper reference values: average power 211 µW, delivery delay 1.45 s,
//! transmission failure probability 16 %, load 42 %.
//!
//! With `--json`, per-channel wall-clock and statistics — plus a serial
//! reference timing and the resulting speedup — are written to
//! `BENCH_network.json`, mirroring fig6's `BENCH_contention.json` schema.
//!
//! Usage: `cargo run --release -p wsn-bench --bin case_study [superframes] [--threads N] [--reps N] [--json]`

use wsn_bench::{export_scenario_file, network_bench_json, RunArgs, BENCH_NETWORK_PATH};
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::{ContentionModel, IdealContention, MonteCarloContention};
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::{PhaseTag, RadioModel, StateKind};

fn main() {
    let args = RunArgs::parse(60);
    wsn_bench::init_metrics(&args);
    let reps = args.reps_or(4);
    let runner = args.runner();

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));

    // `--export-scenario`: write the study's exact Scenario as saved JSON
    // (the batch-service fixture) instead of running anything. The export
    // is the plain scenario — the link-adapted per-node levels
    // `simulate_timed` swaps in are a runtime refinement, not scenario
    // state — so `Scenario::run` on the loaded file is the bit-identity
    // reference.
    if let Some(path) = &args.export_scenario {
        let scenario = study
            .scenario()
            .with_superframes(args.superframes)
            .with_replications(reps);
        export_scenario_file(path, &wsn_sim::SavedScenario::open_loop(scenario));
        return;
    }

    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6().with_superframes(args.superframes);
    mc.prewarm(&runner, &[(study.load(), study.packet())]);

    println!("# Case study (paper §5)");
    println!(
        "channel load λ            : {:.3}  (paper: 0.42)",
        study.load()
    );
    let stats = mc.stats(study.load(), study.packet());
    println!("contention stats at λ     : {stats}");

    for (name, report) in [
        ("monte-carlo contention", study.run(&ber, &mc)),
        (
            "ideal contention (ablation)",
            study.run(&ber, &IdealContention),
        ),
    ] {
        println!("\n## model: {name}");
        println!(
            "average power             : {:.1} µW   (paper: 211 µW)",
            report.average_power.microwatts()
        );
        println!(
            "mean delivery delay       : {:.2} s    (paper: 1.45 s)",
            report.mean_delay.secs()
        );
        println!(
            "transmission failure      : {:.1} %    (paper: 16 %)",
            report.mean_failure.value() * 100.0
        );
        println!("energy breakdown (Figure 9a):");
        for phase in [
            PhaseTag::Beacon,
            PhaseTag::Contention,
            PhaseTag::Transmit,
            PhaseTag::AckWait,
        ] {
            println!(
                "  {:<11}: {:5.1} %",
                phase.to_string(),
                report.phase_fraction(phase) * 100.0
            );
        }
        println!("time breakdown (Figure 9b):");
        for state in StateKind::ALL {
            println!(
                "  {:<11}: {:7.3} %",
                state.to_string(),
                report.state_fraction(state) * 100.0
            );
        }
        println!("tx-level shares:");
        for (level, share) in report.level_shares {
            if share > 0.0 {
                println!("  {:<11}: {:5.1} %", level.to_string(), share * 100.0);
            }
        }
    }

    // The discrete-event reproduction: 16 channels × reps replications as
    // one parallel job grid, per-node link-adapted transmit power.
    let timed = study.simulate_timed(&runner, &ber, &mc, args.superframes, reps);
    let outcome = &timed.outcome;
    println!(
        "\n## simulator: 16 parallel channels × {reps} replications ({} threads)",
        runner.threads()
    );
    println!(
        "average power             : {:.1} ± {:.1} µW   (paper: 211 µW)",
        outcome.overall.mean_node_power.microwatts(),
        outcome.overall.power_standard_error.microwatts()
    );
    println!(
        "mean delivery delay       : {:.2} ± {:.2} s    (paper: 1.45 s)",
        outcome.overall.mean_delay.secs(),
        outcome.overall.delay_standard_error.secs()
    );
    println!(
        "transmission failure      : {:.1} ± {:.1} %    (paper: 16 %)",
        outcome.overall.failure_ratio.value() * 100.0,
        outcome.overall.failure_standard_error * 100.0
    );
    println!(
        "energy per delivered bit  : {:.0} nJ",
        outcome.overall.energy_per_bit_nj
    );
    println!("energy breakdown (simulated):");
    for (phase, f) in outcome.overall.ledger.phase_energy_fractions() {
        if f > 0.0005 && phase != PhaseTag::Sleep {
            println!("  {:<11}: {:5.1} %", phase.to_string(), f * 100.0);
        }
    }
    println!("per-channel spread:");
    let (lo, hi) = outcome.power_spread_uw();
    println!("  node power : {lo:.1} – {hi:.1} µW across the 16 channels");
    let (worst, summary) = outcome.worst_channel();
    println!(
        "  worst failure: channel {worst} at {:.1} ± {:.1} %",
        summary.failure_ratio.value() * 100.0,
        summary.failure_standard_error * 100.0
    );
    println!("\nchannel,power_uW,power_se_uW,fail_pct,fail_se_pct,delay_s,attempts");
    for (c, s) in outcome.per_channel.iter().enumerate() {
        println!(
            "{c},{:.2},{:.2},{:.2},{:.2},{:.3},{:.3}",
            s.mean_node_power.microwatts(),
            s.power_standard_error.microwatts(),
            s.failure_ratio.value() * 100.0,
            s.failure_standard_error * 100.0,
            s.mean_delay.secs(),
            s.mean_attempts
        );
    }

    if args.json {
        // Serial reference pass for the recorded speedup (skipped when the
        // grid already ran single-threaded — it would be the same run).
        let serial_wall_ms = (runner.threads() > 1).then(|| {
            study
                .simulate_timed(&wsn_sim::Runner::serial(), &ber, &mc, args.superframes, reps)
                .wall_ms
        });
        let doc = network_bench_json(
            "case_study_network",
            args.superframes,
            reps,
            runner.threads(),
            &timed,
            serial_wall_ms,
            Vec::new(),
        );
        std::fs::write(BENCH_NETWORK_PATH, doc.render()).expect("write benchmark JSON");
        eprintln!("wrote {BENCH_NETWORK_PATH}");
    }
    wsn_bench::finish_metrics(&args);
}
