//! Experiment CASE — the paper's §5 dense-network case study.
//!
//! 1600 nodes / 16 channels (100 per channel), 1 byte per 8 ms per node
//! buffered into 120-byte packets, BO = 6 (T_ib = 983.04 ms), path losses
//! uniform in 55–95 dB, per-node energy-optimal transmit power.
//!
//! Paper reference values: average power 211 µW, delivery delay 1.45 s,
//! transmission failure probability 16 %, load 42 %.
//!
//! Usage: `cargo run --release -p wsn-bench --bin case_study [superframes] [--threads N]`

use wsn_bench::RunArgs;
use wsn_core::activation::ActivationModel;
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::{ContentionModel, IdealContention, MonteCarloContention};
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::{PhaseTag, RadioModel, StateKind};

fn main() {
    let args = RunArgs::parse(60);

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6().with_superframes(args.superframes);
    mc.prewarm(&args.runner(), &[(study.load(), study.packet())]);

    println!("# Case study (paper §5)");
    println!(
        "channel load λ            : {:.3}  (paper: 0.42)",
        study.load()
    );
    let stats = mc.stats(study.load(), study.packet());
    println!("contention stats at λ     : {stats}");

    for (name, report) in [
        ("monte-carlo contention", study.run(&ber, &mc)),
        (
            "ideal contention (ablation)",
            study.run(&ber, &IdealContention),
        ),
    ] {
        println!("\n## {name}");
        println!(
            "average power             : {:.1} µW   (paper: 211 µW)",
            report.average_power.microwatts()
        );
        println!(
            "mean delivery delay       : {:.2} s    (paper: 1.45 s)",
            report.mean_delay.secs()
        );
        println!(
            "transmission failure      : {:.1} %    (paper: 16 %)",
            report.mean_failure.value() * 100.0
        );
        println!("energy breakdown (Figure 9a):");
        for phase in [
            PhaseTag::Beacon,
            PhaseTag::Contention,
            PhaseTag::Transmit,
            PhaseTag::AckWait,
        ] {
            println!(
                "  {:<11}: {:5.1} %",
                phase.to_string(),
                report.phase_fraction(phase) * 100.0
            );
        }
        println!("time breakdown (Figure 9b):");
        for state in StateKind::ALL {
            println!(
                "  {:<11}: {:7.3} %",
                state.to_string(),
                report.state_fraction(state) * 100.0
            );
        }
        println!("tx-level shares:");
        for (level, share) in report.level_shares {
            if share > 0.0 {
                println!("  {:<11}: {:5.1} %", level.to_string(), share * 100.0);
            }
        }
    }
}
