//! Experiment harness crate; see the `fig*` binaries.
