//! Experiment harness crate; see the `fig*` binaries.
//!
//! This library hosts the plumbing every figure binary shares: CLI parsing
//! (`[superframes] [--threads N] [--json]`), construction of the parallel
//! [`Runner`], and a dependency-free JSON emitter for machine-readable
//! benchmark output (`BENCH_contention.json`).

use std::time::Instant;

use wsn_sim::Runner;

/// Common command-line arguments of the figure binaries.
///
/// Accepted forms: a positional superframe count, `--threads N` (worker
/// threads; overrides the `WSN_SIM_THREADS` environment variable, which in
/// turn overrides auto-detection), `--reps N` (independent replications
/// per Monte-Carlo point, for replication-based standard errors),
/// `--rounds N` (closed-loop policy rounds, where the binary runs one),
/// `--json` (emit machine-readable benchmark output where the binary
/// supports it), `--export-scenario <path>` (write the binary's scenario
/// as saved JSON instead of running it, where supported),
/// `--save-dir <path>` (write a sweep's scenarios into a directory
/// instead of running them, where supported) and `--metrics <path|->`
/// (enable [`wsn_sim::telemetry`] and write its end-of-run snapshot as
/// JSONL — two records, deterministic then timing; see the repository's
/// `SCHEMA.md` § OBSERVABILITY — to the path, `-` for stdout; telemetry
/// is deterministically inert, so all simulation output is unchanged).
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Superframes simulated per Monte-Carlo point.
    pub superframes: u32,
    /// Explicit worker-thread count (`--threads N`), if given.
    pub threads: Option<usize>,
    /// Explicit replication count (`--reps N`), if given; binaries fall
    /// back to their own defaults.
    pub reps: Option<u32>,
    /// Explicit policy-round budget (`--rounds N`), if given; the
    /// adaptive binaries fall back to their own defaults.
    pub rounds: Option<u32>,
    /// `--json`: write machine-readable benchmark output.
    pub json: bool,
    /// `--export-scenario <path>`: write the scenario as saved JSON
    /// ([`wsn_sim::persist`]) and exit, where the binary supports it.
    pub export_scenario: Option<String>,
    /// `--save-dir <path>`: write a sweep's scenarios as saved JSON
    /// files into the directory and exit, where the binary supports it.
    pub save_dir: Option<String>,
    /// `--metrics <path|->`: enable telemetry and write the end-of-run
    /// snapshot (deterministic + timing JSONL records) there; `-` means
    /// stdout.
    pub metrics: Option<String>,
}

impl RunArgs {
    /// Parses `std::env::args`, falling back to `default_superframes`.
    ///
    /// Unknown arguments abort with a usage message rather than being
    /// silently ignored.
    pub fn parse(default_superframes: u32) -> RunArgs {
        let mut out = RunArgs {
            superframes: default_superframes,
            threads: None,
            reps: None,
            rounds: None,
            json: false,
            export_scenario: None,
            save_dir: None,
            metrics: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--threads" => {
                    let value = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0);
                    match value {
                        Some(n) => out.threads = Some(n),
                        None => usage("--threads requires a positive integer"),
                    }
                }
                "--reps" => {
                    let value = args
                        .next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .filter(|&n| n > 0);
                    match value {
                        Some(n) => out.reps = Some(n),
                        None => usage("--reps requires a positive integer"),
                    }
                }
                "--rounds" => {
                    let value = args
                        .next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .filter(|&n| n > 0);
                    match value {
                        Some(n) => out.rounds = Some(n),
                        None => usage("--rounds requires a positive integer"),
                    }
                }
                "--json" => out.json = true,
                "--export-scenario" => match args.next() {
                    Some(path) if !path.is_empty() => out.export_scenario = Some(path),
                    _ => usage("--export-scenario requires a file path"),
                },
                "--save-dir" => match args.next() {
                    Some(path) if !path.is_empty() => out.save_dir = Some(path),
                    _ => usage("--save-dir requires a directory path"),
                },
                "--metrics" => match args.next() {
                    Some(path) if !path.is_empty() => out.metrics = Some(path),
                    _ => usage("--metrics requires a file path or `-` for stdout"),
                },
                other => match other.parse::<u32>() {
                    Ok(sf) if sf >= 2 => out.superframes = sf,
                    Ok(_) => usage("superframes must be at least 2 (the first is warm-up)"),
                    Err(_) => usage(&format!("unrecognized argument `{other}`")),
                },
            }
        }
        out
    }

    /// The replication count: `--reps` if given, otherwise `default`.
    pub fn reps_or(&self, default: u32) -> u32 {
        self.reps.unwrap_or(default).max(1)
    }

    /// The policy-round budget: `--rounds` if given, otherwise `default`.
    pub fn rounds_or(&self, default: u32) -> u32 {
        self.rounds.unwrap_or(default).max(1)
    }

    /// Builds the runner: `--threads` beats `WSN_SIM_THREADS` beats
    /// auto-detected core count.
    pub fn runner(&self) -> Runner {
        match self.threads {
            Some(n) => Runner::with_threads(n),
            None => Runner::from_env(),
        }
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: <binary> [superframes] [--threads N] [--reps N] [--rounds N] [--json] \
         [--export-scenario PATH] [--save-dir PATH] [--metrics PATH|-]"
    );
    std::process::exit(2);
}

/// Enables [`wsn_sim::telemetry`] when `--metrics` was given. Call
/// before any simulation work so the whole run is covered.
pub fn init_metrics(args: &RunArgs) {
    if args.metrics.is_some() {
        wsn_sim::telemetry::set_enabled(true);
    }
}

/// Writes the end-of-run telemetry snapshot — one deterministic and one
/// timing JSONL record (`SCHEMA.md` § OBSERVABILITY) — to the
/// `--metrics` path (`-` = stdout) and prints one `# heartbeat:` summary
/// line to stderr. No-op without `--metrics`.
pub fn finish_metrics(args: &RunArgs) {
    let Some(path) = &args.metrics else { return };
    let (det, timing) = wsn_sim::telemetry::snapshot_lines(true);
    let payload = format!("{det}\n{timing}\n");
    if path == "-" {
        print!("{payload}");
    } else if let Err(e) = std::fs::write(path, payload) {
        eprintln!("error: cannot write metrics {path}: {e}");
        std::process::exit(1);
    }
    let snap = wsn_sim::telemetry::snapshot();
    let walls = wsn_sim::telemetry::timing_snapshot();
    let rate = if walls.job.total_ms > 0.0 {
        snap.engine.events as f64 / (walls.job.total_ms / 1e3)
    } else {
        0.0
    };
    eprintln!(
        "# heartbeat: {}/{} done, 0 failed, eta 0.0s, {rate:.0} events/s",
        snap.runner.jobs, snap.runner.jobs
    );
}

/// Milliseconds elapsed since `start`, as f64.
pub fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Canonical output path of the network benchmark document emitted by
/// `case_study --json` and `adaptive --json`.
pub const BENCH_NETWORK_PATH: &str = "BENCH_network.json";

/// Canonical output path of the event-core hot-loop benchmark emitted by
/// `bench_core --json`; CI diffs its `events_per_sec` against the
/// committed baseline (warn-only).
pub const BENCH_CORE_PATH: &str = "BENCH_core.json";

/// Canonical output path of the CFP (GTS + downlink) study emitted by
/// `gts_study --json`, mirroring `BENCH_network.json`'s schema with one
/// point per swept `(gts_nodes, downlink_rate)` cell.
pub const BENCH_CFP_PATH: &str = "BENCH_cfp.json";

/// Canonical output path of the fault-injection study emitted by
/// `churn_study --json`: one point per swept `(death_rate,
/// outage_superframes)` cell, carrying the graceful-degradation curve
/// (delivery ratio and µJ per delivered packet versus churn).
pub const BENCH_FAULTS_PATH: &str = "BENCH_faults.json";

/// Canonical output path of the scale ladder emitted by
/// `bench_scale --json`: one point per decade of single-channel node
/// count (10³ → 10⁶), carrying events/s and µW per node, plus the
/// sharded-vs-unsharded bit-identity verdict.
pub const BENCH_SCALE_PATH: &str = "BENCH_scale.json";

/// Canonical output path of the batch-service benchmark emitted by
/// `batch_run --json`: scenarios/sec over the whole batch, per-scenario
/// wall-clock and `host_cpus`.
pub const BENCH_BATCH_PATH: &str = "BENCH_batch.json";

/// Writes a scenario as saved JSON at `path` (the `--export-scenario`
/// implementation shared by the study binaries), creating parent
/// directories as needed.
///
/// # Panics
///
/// Aborts the process with a message on serialization or I/O failure —
/// these binaries are CLIs, not libraries.
pub fn export_scenario_file(path: &str, saved: &wsn_sim::SavedScenario) {
    let text = match wsn_sim::save_scenario(saved) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot save scenario: {e}");
            std::process::exit(2);
        }
    };
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = std::fs::write(path, &text) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {path} ({} bytes)", text.len());
}

/// Builds the `BENCH_network.json` document, mirroring
/// `BENCH_contention.json`'s schema: per-point (here: per-channel)
/// wall-clock, a serial-reference speedup and `host_cpus`, plus the
/// reduced per-channel statistics. `extra` pairs (e.g. the adaptive
/// binary's round trajectory) are spliced in before `points`.
pub fn network_bench_json(
    benchmark: &str,
    superframes: u32,
    replications: u32,
    threads: usize,
    run: &wsn_sim::TimedScenarioRun,
    serial_wall_ms: Option<f64>,
    extra: Vec<(&'static str, Json)>,
) -> Json {
    let points: Vec<Json> = run
        .outcome
        .per_channel
        .iter()
        .zip(&run.channel_wall_ms)
        .enumerate()
        .map(|(c, (s, &ms))| {
            Json::Obj(vec![
                ("channel", Json::Int(c as i64)),
                ("wall_ms", Json::Num(ms)),
                ("power_uw", Json::Num(s.mean_node_power.microwatts())),
                (
                    "power_se_uw",
                    Json::Num(s.power_standard_error.microwatts()),
                ),
                ("pr_fail", Json::Num(s.failure_ratio.value())),
                ("pr_fail_se", Json::Num(s.failure_standard_error)),
                ("delay_s", Json::Num(s.mean_delay.secs())),
                ("attempts", Json::Num(s.mean_attempts)),
                ("transactions", Json::Int(s.transactions as i64)),
            ])
        })
        .collect();
    let (serial_ms, speedup) = match serial_wall_ms {
        Some(ms) => (Json::Num(ms), Json::Num(ms / run.wall_ms)),
        None => (Json::Null, Json::Null),
    };
    let mut pairs = vec![
        ("benchmark", Json::Str(benchmark.into())),
        ("superframes", Json::Int(superframes as i64)),
        ("replications", Json::Int(replications as i64)),
        ("threads", Json::Int(threads as i64)),
        (
            "host_cpus",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        ("channels", Json::Int(points.len() as i64)),
        ("wall_ms", Json::Num(run.wall_ms)),
        ("serial_wall_ms", serial_ms),
        ("speedup_vs_serial", speedup),
        (
            "overall_power_uw",
            Json::Num(run.outcome.overall.mean_node_power.microwatts()),
        ),
        (
            "overall_pr_fail",
            Json::Num(run.outcome.overall.failure_ratio.value()),
        ),
    ];
    pairs.extend(extra);
    pairs.push(("points", Json::Arr(points)));
    Json::Obj(pairs)
}

/// A minimal JSON value with a canonical renderer — enough for the
/// benchmark emitters, with no external dependency.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Finite float (non-finite values render as `null`).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: ordered key/value pairs.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no trailing newline, for
    /// machine-parsed records embedded in stderr streams.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{key}\":"));
                    value.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&format!("\"{key}\": "));
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_nested_structures() {
        let doc = Json::Obj(vec![
            ("name", Json::Str("fig6".into())),
            ("threads", Json::Int(8)),
            ("speedup", Json::Num(3.75)),
            ("nan", Json::Num(f64::NAN)),
            ("points", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"fig6\""), "{text}");
        assert!(text.contains("\"speedup\": 3.75"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn json_escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd".into());
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }
}
