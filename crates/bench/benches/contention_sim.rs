//! Criterion benchmarks for the contention Monte-Carlo and the network
//! energy simulation — the throughput that bounds every Figure 6/9 sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use wsn_sim::{simulate_contention, ChannelSimConfig};
use wsn_units::{DBm, Db, Seconds};

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_sim");
    for &load in &[0.1, 0.42, 0.8] {
        let mut cfg = ChannelSimConfig::figure6(100, load, 7);
        cfg.superframes = 5;
        group.bench_function(format!("load_{load}"), |b| {
            b.iter(|| simulate_contention(black_box(&cfg)))
        });
    }
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut channel = ChannelSimConfig::figure6(120, 0.42, 9);
    channel.nodes = 100;
    channel.superframes = 5;
    let nodes = channel.nodes;
    let sim = NetworkSimulator::new(NetworkConfig {
        channel,
        radio: RadioModel::cc2420(),
        path_losses: vec![Db::new(75.0); nodes].into(),
        tx_policy: TxPowerPolicy::Fixed(TxPowerLevel::Neg5),
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    });
    let ber = EmpiricalCc2420Ber::paper();
    c.bench_function("network_sim_100_nodes_5_superframes", |b| {
        b.iter(|| sim.run(black_box(&ber)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_contention, bench_network
);
criterion_main!(benches);
