//! Criterion benchmarks for the analytical model: single evaluations, the
//! link-adaptation inner loop, and a full case-study run with cached
//! contention statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_core::activation::{ActivationModel, ModelInputs};
use wsn_core::case_study::CaseStudy;
use wsn_core::contention::{ContentionModel, IdealContention};
use wsn_core::link_adaptation::LinkAdaptation;
use wsn_mac::BeaconOrder;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_units::Db;

fn bench_model_eval(c: &mut Criterion) {
    let model = ActivationModel::paper_defaults(RadioModel::cc2420());
    let ber = EmpiricalCc2420Ber::paper();
    let packet = PacketLayout::with_payload(120).unwrap();
    let inputs = ModelInputs {
        packet,
        beacon_order: BeaconOrder::new(6).unwrap(),
        tx_level: TxPowerLevel::Neg5,
        path_loss: Db::new(80.0),
        contention: IdealContention.stats(0.42, packet),
    };
    c.bench_function("activation_model_evaluate", |b| {
        b.iter(|| model.evaluate(black_box(&inputs), &ber))
    });
}

fn bench_link_adaptation(c: &mut Criterion) {
    let study = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        PacketLayout::with_payload(120).unwrap(),
        BeaconOrder::new(6).unwrap(),
    );
    let ber = EmpiricalCc2420Ber::paper();
    c.bench_function("link_adaptation_best_level", |b| {
        b.iter(|| study.best_level(black_box(Db::new(82.0)), 0.42, &ber, &IdealContention))
    });
}

fn bench_case_study(c: &mut Criterion) {
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()))
        .with_grid_points(41);
    let ber = EmpiricalCc2420Ber::paper();
    c.bench_function("case_study_run_ideal_contention", |b| {
        b.iter(|| study.run(black_box(&ber), &IdealContention))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model_eval, bench_link_adaptation, bench_case_study
);
criterion_main!(benches);
