//! Criterion benchmarks for the discrete-event core: queue throughput and
//! the RNG.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_phy::noise::UniformSource;
use wsn_sim::events::EventQueue;
use wsn_sim::Xoshiro256StarStar;

fn bench_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        b.iter(|| {
            // Pre-size the calendar ring to the spread so the bench
            // measures steady-state push/pop, not one-time ring growth.
            let mut q = EventQueue::with_window(100_000);
            for i in 0..10_000u64 {
                q.push(rng.next_u64() % 100_000, (i % 4) as u8, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });

    c.bench_function("event_queue_interleaved", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut acc = 0u64;
            for wave in 0..100u64 {
                for i in 0..100u64 {
                    q.push(wave * 1000 + i, 0, i);
                }
                for _ in 0..100 {
                    if let Some((_, v)) = q.pop() {
                        acc = acc.wrapping_add(v);
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    c.bench_function("xoshiro_next_f64", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| black_box(rng.next_f64()))
    });
    c.bench_function("xoshiro_split", |b| {
        let rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(rng.split(i))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_queue, bench_rng
);
criterion_main!(benches);
