//! Criterion benchmarks for the PHY: chip spreading/despreading and the
//! chip-level AWGN Monte-Carlo that regenerates Figure 4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_phy::baseband::{simulate_ber, BasebandConfig};
use wsn_phy::ber::{BerModel, EmpiricalCc2420Ber, HardDecisionDsssBer, StandardOqpskBer};
use wsn_phy::noise::SplitMix64;
use wsn_phy::spreading::{despread, spread_bytes, ChipSequence};
use wsn_units::{DBm, Db};

fn bench_spreading(c: &mut Criterion) {
    let frame: Vec<u8> = (0..127).collect();
    c.bench_function("spread_127_bytes", |b| {
        b.iter(|| spread_bytes(black_box(&frame)))
    });

    let chips = spread_bytes(&frame);
    c.bench_function("despread_127_bytes", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &chip in &chips {
                acc += despread(black_box(chip)).value() as u32;
            }
            acc
        })
    });

    c.bench_function("despread_single_corrupted", |b| {
        let corrupted = ChipSequence::from_raw(
            ChipSequence::for_symbol(wsn_phy::spreading::Symbol::new(9).unwrap()).raw()
                ^ 0x0101_0011,
        );
        b.iter(|| despread(black_box(corrupted)))
    });
}

fn bench_ber_models(c: &mut Criterion) {
    let p = DBm::new(-90.0);
    let empirical = EmpiricalCc2420Ber::paper();
    let analytic = HardDecisionDsssBer::new(Db::new(21.0));
    let standard = StandardOqpskBer::new(Db::new(21.0));
    c.bench_function("ber_empirical", |b| {
        b.iter(|| empirical.bit_error_probability(black_box(p)))
    });
    c.bench_function("ber_union_bound", |b| {
        b.iter(|| analytic.bit_error_probability(black_box(p)))
    });
    c.bench_function("ber_standard_formula", |b| {
        b.iter(|| standard.bit_error_probability(black_box(p)))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let cfg = BasebandConfig::new(Db::new(21.0));
    c.bench_function("baseband_mc_40k_bits", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| simulate_ber(cfg, black_box(DBm::new(-91.0)), 40_000, u64::MAX, &mut rng))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spreading, bench_ber_models, bench_monte_carlo
);
criterion_main!(benches);
