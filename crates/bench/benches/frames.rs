//! Criterion benchmarks for frame serialization, parsing and the FCS.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_mac::beacon::BeaconPayload;
use wsn_mac::SuperframeConfig;
use wsn_phy::frame::{crc16_itu_t, Address, MacFrame};

fn bench_crc(c: &mut Criterion) {
    let body: Vec<u8> = (0..125).collect();
    c.bench_function("crc16_125_bytes", |b| {
        b.iter(|| crc16_itu_t(black_box(&body)))
    });
}

fn bench_frames(c: &mut Criterion) {
    let frame = MacFrame::data(
        42,
        0x1234,
        Address::Short(0x0000),
        Address::Short(0x0042),
        vec![0xAB; 100],
        true,
    );
    c.bench_function("data_frame_serialize_100B", |b| {
        b.iter(|| black_box(&frame).serialize().unwrap())
    });

    let wire = frame.serialize().unwrap();
    c.bench_function("data_frame_parse_100B", |b| {
        b.iter(|| MacFrame::parse(black_box(&wire)).unwrap())
    });
}

fn bench_beacon(c: &mut Criterion) {
    let payload = BeaconPayload::for_config(SuperframeConfig::fully_active(6).unwrap());
    c.bench_function("beacon_payload_serialize", |b| {
        b.iter(|| black_box(&payload).serialize())
    });
    let wire = payload.serialize();
    c.bench_function("beacon_payload_parse", |b| {
        b.iter(|| BeaconPayload::parse(black_box(&wire)).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_crc, bench_frames, bench_beacon
);
criterion_main!(benches);
