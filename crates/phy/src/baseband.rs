//! Chip-level Monte-Carlo baseband simulator.
//!
//! This module plays the role of the paper's measurement testbench (a CC2420
//! transmitter wired through calibrated attenuators to a CC2420 receiver):
//! random symbols are spread to 32-chip sequences, sent as antipodal values
//! through an AWGN channel at a controlled received power, hard-sliced, and
//! despread by minimum-distance correlation. Counting nibble bit errors
//! yields a BER estimate per received-power point; regressing those points
//! with [`crate::regression`] regenerates the paper's Figure 4.

use wsn_units::{DBm, Db};

use crate::ber::chip_snr_linear;
use crate::noise::{GaussianSource, UniformSource};
use crate::spreading::{despread, ChipSequence, Symbol};

/// Configuration of the baseband Monte-Carlo experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasebandConfig {
    /// Effective receiver noise figure (thermal floor `−174 dBm/Hz + NF`).
    pub noise_figure: Db,
}

impl BasebandConfig {
    /// Creates a configuration with the given effective noise figure.
    pub fn new(noise_figure: Db) -> Self {
        BasebandConfig { noise_figure }
    }
}

/// Outcome of a Monte-Carlo BER run: errored and total payload bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BerEstimate {
    /// Number of payload bit errors observed.
    pub bit_errors: u64,
    /// Number of payload bits simulated.
    pub bits: u64,
}

impl BerEstimate {
    /// The estimated bit error rate.
    ///
    /// # Panics
    ///
    /// Panics if no bits were simulated.
    pub fn ber(&self) -> f64 {
        assert!(self.bits > 0, "BER of an empty run is undefined");
        self.bit_errors as f64 / self.bits as f64
    }

    /// Approximate standard error of the estimate (binomial).
    pub fn standard_error(&self) -> f64 {
        let p = self.ber();
        (p * (1.0 - p) / self.bits as f64).sqrt()
    }
}

/// Simulates transmission of random symbols at a fixed received power and
/// returns the measured BER.
///
/// `min_bits` sets the floor on simulated payload bits; the run also stops
/// early once `target_errors` bit errors are seen *and* `min_bits/4` bits
/// have been simulated, which keeps low-power points cheap without starving
/// high-power points of statistics.
///
/// # Examples
///
/// ```
/// use wsn_phy::baseband::{simulate_ber, BasebandConfig};
/// use wsn_phy::noise::SplitMix64;
/// use wsn_units::{Db, DBm};
///
/// let cfg = BasebandConfig::new(Db::new(18.0));
/// let mut rng = SplitMix64::new(1);
/// let est = simulate_ber(cfg, DBm::new(-91.0), 40_000, 50, &mut rng);
/// assert!(est.bits >= 10_000);
/// ```
pub fn simulate_ber<U: UniformSource>(
    config: BasebandConfig,
    p_rx: DBm,
    min_bits: u64,
    target_errors: u64,
    rng: &mut U,
) -> BerEstimate {
    let snr = chip_snr_linear(p_rx, config.noise_figure);
    // Antipodal chips of unit energy: noise std dev σ = √(1/(2·Ec/N0)).
    let sigma = (1.0 / (2.0 * snr)).sqrt();

    let mut bit_errors = 0u64;
    let mut bits = 0u64;
    while bits < min_bits && !(bit_errors >= target_errors && bits >= min_bits / 4) {
        // Uniform random 4-bit symbol.
        let tx_value = ((rng.next_f64() * 16.0) as u8).min(15);
        let tx = Symbol::new(tx_value).expect("nibble is < 16");
        let clean = ChipSequence::for_symbol(tx);

        // Transmit each chip through AWGN with hard slicing.
        let mut gaussian = GaussianSource::new(&mut *rng);
        let mut received = 0u32;
        for (i, chip) in clean.antipodal().enumerate() {
            let sample = chip + sigma * gaussian.next_gaussian();
            if sample >= 0.0 {
                received |= 1 << i;
            }
        }
        let rx = despread(ChipSequence::from_raw(received));
        bit_errors += u64::from((rx.value() ^ tx.value()).count_ones());
        bits += 4;
    }

    BerEstimate { bit_errors, bits }
}

/// Sweeps received power and returns `(P_Rx dBm, measured BER)` points —
/// the raw material of Figure 4.
pub fn ber_sweep<U: UniformSource>(
    config: BasebandConfig,
    powers_dbm: &[f64],
    min_bits: u64,
    target_errors: u64,
    rng: &mut U,
) -> Vec<(f64, f64)> {
    powers_dbm
        .iter()
        .map(|&dbm| {
            let est = simulate_ber(config, DBm::new(dbm), min_bits, target_errors, rng);
            (dbm, est.ber())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::{calibrate_noise_figure, BerModel, HardDecisionDsssBer};
    use crate::noise::SplitMix64;

    #[test]
    fn high_power_is_error_free() {
        let cfg = BasebandConfig::new(Db::new(18.0));
        let mut rng = SplitMix64::new(11);
        let est = simulate_ber(cfg, DBm::new(-60.0), 20_000, 100, &mut rng);
        assert_eq!(est.bit_errors, 0, "unexpected errors at -60 dBm");
    }

    #[test]
    fn low_power_has_many_errors() {
        let cfg = BasebandConfig::new(Db::new(18.0));
        let mut rng = SplitMix64::new(12);
        let est = simulate_ber(cfg, DBm::new(-110.0), 20_000, 100, &mut rng);
        assert!(est.ber() > 0.05, "BER at -110 dBm = {}", est.ber());
    }

    #[test]
    fn ber_decreases_with_power() {
        let cfg = BasebandConfig::new(Db::new(18.0));
        let mut rng = SplitMix64::new(13);
        let points = ber_sweep(cfg, &[-96.0, -93.0, -90.0], 200_000, 200, &mut rng);
        assert!(
            points[0].1 > points[1].1 && points[1].1 > points[2].1,
            "{points:?}"
        );
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_union_bound() {
        // At moderate SNR the union bound is tight; MC and analytic model
        // should agree within a factor ~2 (same order of magnitude).
        let nf = calibrate_noise_figure(DBm::new(-90.0), 1.34e-4);
        let cfg = BasebandConfig::new(nf);
        let analytic = HardDecisionDsssBer::new(nf);
        let mut rng = SplitMix64::new(14);
        let p = DBm::new(-92.0);
        let est = simulate_ber(cfg, p, 3_000_000, 400, &mut rng);
        let mc = est.ber();
        let th = analytic.bit_error_probability(p).value();
        let ratio = mc / th;
        assert!(
            (0.4..2.5).contains(&ratio),
            "MC {mc:.3e} vs analytic {th:.3e} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn estimate_accessors() {
        let est = BerEstimate {
            bit_errors: 10,
            bits: 10_000,
        };
        assert!((est.ber() - 1e-3).abs() < 1e-12);
        assert!(est.standard_error() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_estimate_panics() {
        let est = BerEstimate {
            bit_errors: 0,
            bits: 0,
        };
        let _ = est.ber();
    }

    #[test]
    fn runs_are_reproducible_for_equal_seeds() {
        let cfg = BasebandConfig::new(Db::new(18.0));
        let a = simulate_ber(cfg, DBm::new(-92.0), 50_000, 50, &mut SplitMix64::new(77));
        let b = simulate_ber(cfg, DBm::new(-92.0), 50_000, 50, &mut SplitMix64::new(77));
        assert_eq!(a, b);
    }
}
