//! IEEE 802.15.4 (2003) physical layer for the 2 450 MHz band.
//!
//! This crate implements the PHY substrate the DATE 2005 paper builds on:
//!
//! * [`consts`] — the timing and rate constants of the 2.45 GHz O-QPSK PHY
//!   (2 Mchip/s, 16 µs symbol, 32 µs byte, 250 kb/s, 16 channels);
//! * [`spreading`] — the 16 standard 32-chip pseudo-noise sequences, the
//!   4-bit-symbol↔chip mapping, and a hard-decision correlation receiver;
//! * [`frame`] — PPDU and MPDU byte layouts, the ITU-T CRC-16 frame check
//!   sequence, and the paper's [`frame::PacketLayout`] overhead arithmetic
//!   (`L_o = 13`, `T_packet = (L_o + L)·T_B`);
//! * [`ber`] — bit-error-rate models: the paper's empirical CC2420
//!   regression (eq. 1), an analytic hard-decision despreading model, and
//!   the O-QPSK DSSS formula from the 802.15.4 standard;
//! * [`baseband`] — a chip-level Monte-Carlo AWGN simulator that plays the
//!   role of the paper's wired attenuator testbench (regenerates Figure 4);
//! * [`regression`] — the exponential regression the paper applies to its
//!   measurements to obtain eq. (1).
//!
//! # Example
//!
//! Evaluate the paper's empirical bit-error model at the receiver power that
//! corresponds to a 0 dBm transmission over an 88 dB path:
//!
//! ```
//! use wsn_phy::ber::{BerModel, EmpiricalCc2420Ber};
//! use wsn_units::{DBm, Db};
//!
//! let ber = EmpiricalCc2420Ber::paper();
//! let p_rx = DBm::new(0.0) - Db::new(88.0);
//! let pr_bit = ber.bit_error_probability(p_rx);
//! assert!(pr_bit.value() > 1e-6 && pr_bit.value() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseband;
pub mod ber;
pub mod consts;
pub mod frame;
pub mod noise;
pub mod regression;
pub mod spreading;
