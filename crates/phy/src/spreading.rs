//! Direct-sequence spread spectrum: the 16 pseudo-noise sequences of the
//! 2 450 MHz PHY and a hard-decision correlation receiver.
//!
//! Each 4-bit data symbol is mapped onto one of 16 nearly-orthogonal 32-chip
//! sequences (IEEE 802.15.4-2003, Table 24). Sequences are stored bit-packed
//! in a `u32` with chip `c0` in the least-significant bit.
//!
//! The standard's table has compact structure which we exploit and verify in
//! tests:
//!
//! * sequences 1–7 are cyclic shifts of sequence 0 by 4·k chips;
//! * sequences 8–15 are sequences 0–7 with every odd-indexed chip inverted
//!   (a conjugation in the half-sine O-QPSK constellation).

use core::fmt;

use crate::consts::CHIPS_PER_SYMBOL;

/// Chip sequence for data symbol 0, chips `c0..c31`, `c0` in the LSB.
///
/// The canonical chip string from the standard is
/// `1101 1001 1100 0011 0101 0010 0010 1110` (c0 first).
const SYMBOL0_CHIPS: u32 = pack_chips(*b"11011001110000110101001000101110");

/// Mask of the odd-indexed chips (`c1, c3, …, c31`).
const ODD_CHIP_MASK: u32 = 0xAAAA_AAAA;

/// Packs a 32-character ASCII chip string (`c0` first) into a `u32`.
const fn pack_chips(s: [u8; 32]) -> u32 {
    let mut word = 0u32;
    let mut i = 0;
    while i < 32 {
        if s[i] == b'1' {
            word |= 1 << i;
        }
        i += 1;
    }
    word
}

/// A 4-bit data symbol (one hexadecimal digit of the PSDU).
///
/// # Examples
///
/// ```
/// use wsn_phy::spreading::Symbol;
///
/// let s = Symbol::new(0xA).unwrap();
/// assert_eq!(s.value(), 0xA);
/// assert!(Symbol::new(16).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u8);

impl Symbol {
    /// Creates a symbol from a nibble value; `None` if `v > 15`.
    #[inline]
    pub fn new(v: u8) -> Option<Self> {
        (v < 16).then_some(Symbol(v))
    }

    /// Returns the nibble value.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Iterates over all 16 symbols in order.
    pub fn all() -> impl Iterator<Item = Symbol> {
        (0u8..16).map(Symbol)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:X}", self.0)
    }
}

/// A 32-chip pseudo-noise sequence, bit-packed with chip `c0` in the LSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipSequence(u32);

impl ChipSequence {
    /// Returns the chip sequence assigned to a data symbol by the standard.
    ///
    /// ```
    /// use wsn_phy::spreading::{ChipSequence, Symbol};
    ///
    /// let seq = ChipSequence::for_symbol(Symbol::new(0).unwrap());
    /// assert_eq!(seq.chip(0), true);  // c0 = 1
    /// assert_eq!(seq.chip(2), false); // c2 = 0
    /// ```
    #[inline]
    pub fn for_symbol(symbol: Symbol) -> Self {
        let base = symbol.value() & 0x7;
        let mut chips = SYMBOL0_CHIPS.rotate_left(4 * base as u32);
        if symbol.value() >= 8 {
            chips ^= ODD_CHIP_MASK;
        }
        ChipSequence(chips)
    }

    /// Creates a sequence from raw packed chips (`c0` in the LSB).
    #[inline]
    pub fn from_raw(chips: u32) -> Self {
        ChipSequence(chips)
    }

    /// Returns the raw packed chips.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns chip `i` (`0..32`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn chip(self, i: u32) -> bool {
        assert!(i < CHIPS_PER_SYMBOL, "chip index {i} out of range");
        (self.0 >> i) & 1 == 1
    }

    /// Returns the Hamming distance to another sequence.
    #[inline]
    pub fn hamming_distance(self, other: ChipSequence) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Returns the correlation (number of agreeing chips, `0..=32`).
    #[inline]
    pub fn correlation(self, other: ChipSequence) -> u32 {
        CHIPS_PER_SYMBOL - self.hamming_distance(other)
    }

    /// Iterates over chips as `±1.0` antipodal values (`1 → +1`).
    pub fn antipodal(self) -> impl Iterator<Item = f64> {
        (0..CHIPS_PER_SYMBOL).map(move |i| if (self.0 >> i) & 1 == 1 { 1.0 } else { -1.0 })
    }
}

impl fmt::Display for ChipSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..CHIPS_PER_SYMBOL {
            write!(f, "{}", (self.0 >> i) & 1)?;
        }
        Ok(())
    }
}

/// Spreads a byte into its two chip sequences, low nibble first (the
/// transmission order mandated by the standard).
///
/// # Examples
///
/// ```
/// use wsn_phy::spreading::{spread_byte, ChipSequence, Symbol};
///
/// let [lo, hi] = spread_byte(0x3A);
/// assert_eq!(lo, ChipSequence::for_symbol(Symbol::new(0xA).unwrap()));
/// assert_eq!(hi, ChipSequence::for_symbol(Symbol::new(0x3).unwrap()));
/// ```
#[inline]
pub fn spread_byte(byte: u8) -> [ChipSequence; 2] {
    let lo = Symbol::new(byte & 0x0F).expect("nibble is < 16");
    let hi = Symbol::new(byte >> 4).expect("nibble is < 16");
    [ChipSequence::for_symbol(lo), ChipSequence::for_symbol(hi)]
}

/// Spreads a full PSDU into chip sequences (two per byte, low nibble first).
pub fn spread_bytes(bytes: &[u8]) -> Vec<ChipSequence> {
    bytes.iter().flat_map(|&b| spread_byte(b)).collect()
}

/// Hard-decision despreader: returns the symbol whose sequence has maximum
/// correlation with the received chips.
///
/// Ties are broken toward the lowest symbol value so decoding is
/// deterministic.
///
/// # Examples
///
/// ```
/// use wsn_phy::spreading::{despread, ChipSequence, Symbol};
///
/// let tx = Symbol::new(0x7).unwrap();
/// let mut chips = ChipSequence::for_symbol(tx).raw();
/// chips ^= 0b1011; // corrupt three chips
/// assert_eq!(despread(ChipSequence::from_raw(chips)), tx);
/// ```
pub fn despread(received: ChipSequence) -> Symbol {
    let mut best = Symbol(0);
    let mut best_corr = 0u32;
    for symbol in Symbol::all() {
        let corr = ChipSequence::for_symbol(symbol).correlation(received);
        if corr > best_corr {
            best_corr = corr;
            best = symbol;
        }
    }
    best
}

/// Reassembles bytes from a despread symbol stream (low nibble first).
///
/// # Panics
///
/// Panics if `symbols` has odd length (half a byte cannot be returned).
pub fn symbols_to_bytes(symbols: &[Symbol]) -> Vec<u8> {
    assert!(
        symbols.len().is_multiple_of(2),
        "symbol stream must contain an even number of symbols, got {}",
        symbols.len()
    );
    symbols
        .chunks_exact(2)
        .map(|pair| pair[0].value() | (pair[1].value() << 4))
        .collect()
}

/// Splits bytes into symbols (low nibble first) — inverse of
/// [`symbols_to_bytes`].
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<Symbol> {
    bytes
        .iter()
        .flat_map(|&b| [Symbol(b & 0x0F), Symbol(b >> 4)])
        .collect()
}

/// Returns the minimum pairwise Hamming distance over all 16 sequences.
///
/// This is the error-correction head-room of the hard-decision receiver; the
/// standard's sequence family achieves at least 12.
pub fn minimum_pairwise_distance() -> u32 {
    let mut min = CHIPS_PER_SYMBOL;
    for a in Symbol::all() {
        for b in Symbol::all() {
            if a < b {
                let d = ChipSequence::for_symbol(a).hamming_distance(ChipSequence::for_symbol(b));
                min = min.min(d);
            }
        }
    }
    min
}

/// Returns the average number of bit errors caused by decoding to a
/// uniformly random wrong symbol (used by the analytic BER model).
pub fn mean_bit_errors_per_symbol_error() -> f64 {
    let mut total = 0u32;
    for a in Symbol::all() {
        for b in Symbol::all() {
            if a != b {
                total += (a.value() ^ b.value()).count_ones();
            }
        }
    }
    total as f64 / (16.0 * 15.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full Table 24 of IEEE 802.15.4-2003 (chips c0 first).
    const TABLE24: [&str; 16] = [
        "11011001110000110101001000101110",
        "11101101100111000011010100100010",
        "00101110110110011100001101010010",
        "00100010111011011001110000110101",
        "01010010001011101101100111000011",
        "00110101001000101110110110011100",
        "11000011010100100010111011011001",
        "10011100001101010010001011101101",
        "10001100100101100000011101111011",
        "10111000110010010110000001110111",
        "01111011100011001001011000000111",
        "01110111101110001100100101100000",
        "00000111011110111000110010010110",
        "01100000011101111011100011001001",
        "10010110000001110111101110001100",
        "11001001011000000111011110111000",
    ];

    fn seq_from_str(s: &str) -> ChipSequence {
        let mut raw = 0u32;
        for (i, c) in s.bytes().enumerate() {
            if c == b'1' {
                raw |= 1 << i;
            }
        }
        ChipSequence::from_raw(raw)
    }

    #[test]
    fn all_sixteen_sequences_match_standard_table() {
        for (i, expect) in TABLE24.iter().enumerate() {
            let sym = Symbol::new(i as u8).unwrap();
            let got = ChipSequence::for_symbol(sym);
            assert_eq!(
                got,
                seq_from_str(expect),
                "symbol {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn display_renders_chip_string() {
        let s = ChipSequence::for_symbol(Symbol::new(0).unwrap());
        assert_eq!(s.to_string(), TABLE24[0]);
    }

    #[test]
    fn sequences_are_distinct() {
        for a in Symbol::all() {
            for b in Symbol::all() {
                if a != b {
                    assert_ne!(
                        ChipSequence::for_symbol(a),
                        ChipSequence::for_symbol(b),
                        "symbols {a} and {b} share a sequence"
                    );
                }
            }
        }
    }

    #[test]
    fn minimum_distance_supports_error_correction() {
        // The family's minimum pairwise Hamming distance: enough to correct
        // at least 5 chip errors per symbol.
        assert!(minimum_pairwise_distance() >= 12);
    }

    #[test]
    fn despread_clean_chips_is_identity() {
        for s in Symbol::all() {
            assert_eq!(despread(ChipSequence::for_symbol(s)), s);
        }
    }

    #[test]
    fn despread_corrects_up_to_five_chip_errors() {
        // With d_min >= 12, any 5 chip errors leave the transmitted sequence
        // strictly closest.
        let corruption = 0b10010010_01000001_u32; // 5 bits set
        assert_eq!(corruption.count_ones(), 5);
        for s in Symbol::all() {
            let rx = ChipSequence::from_raw(ChipSequence::for_symbol(s).raw() ^ corruption);
            assert_eq!(despread(rx), s, "symbol {s} not corrected");
        }
    }

    #[test]
    fn byte_roundtrip_through_chips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let chips = spread_bytes(&bytes);
        assert_eq!(chips.len(), 512);
        let symbols: Vec<Symbol> = chips.into_iter().map(despread).collect();
        assert_eq!(symbols_to_bytes(&symbols), bytes);
    }

    #[test]
    fn bytes_to_symbols_roundtrip() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF];
        assert_eq!(symbols_to_bytes(&bytes_to_symbols(&bytes)), bytes);
    }

    #[test]
    #[should_panic(expected = "even number of symbols")]
    fn odd_symbol_stream_panics() {
        let _ = symbols_to_bytes(&[Symbol::new(1).unwrap()]);
    }

    #[test]
    fn mean_bit_errors_matches_closed_form() {
        // Over all ordered pairs of distinct nibbles, the mean Hamming
        // distance is 4·8/15 + ... = 32/15 ≈ 2.1333.
        let m = mean_bit_errors_per_symbol_error();
        assert!((m - 32.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn antipodal_maps_bits() {
        let s = ChipSequence::for_symbol(Symbol::new(0).unwrap());
        let v: Vec<f64> = s.antipodal().collect();
        assert_eq!(v.len(), 32);
        assert_eq!(v[0], 1.0); // c0 = 1
        assert_eq!(v[2], -1.0); // c2 = 0
    }

    #[test]
    fn correlation_and_distance_are_complementary() {
        let a = ChipSequence::for_symbol(Symbol::new(3).unwrap());
        let b = ChipSequence::for_symbol(Symbol::new(12).unwrap());
        assert_eq!(a.correlation(b) + a.hamming_distance(b), 32);
        assert_eq!(a.correlation(a), 32);
    }
}
