//! Bit-error-rate models for the 2 450 MHz O-QPSK DSSS PHY.
//!
//! Three models of increasing physical fidelity are provided:
//!
//! * [`EmpiricalCc2420Ber`] — the paper's eq. (1), an exponential regression
//!   of the authors' wired-testbench measurements. This is what every
//!   downstream model equation of the paper consumes.
//! * [`HardDecisionDsssBer`] — an analytic model of the CC2420-style
//!   receiver: per-chip hard decisions followed by minimum-distance
//!   despreading, evaluated by a union bound over the actual chip-sequence
//!   distance profile.
//! * [`StandardOqpskBer`] — the closed-form AWGN expression given in the
//!   802.15.4 standard for the 2 450 MHz PHY.
//!
//! The analytic models convert received power to SNR against a thermal
//! noise floor `N₀ = kT·F`; the effective noise figure `F` absorbs receiver
//! implementation losses and can be [calibrated](calibrate_noise_figure) so
//! the analytic model agrees with the empirical curve at an anchor point.

use wsn_units::{DBm, Db, Probability};

use crate::consts::CHIP_RATE_CHIPS_PER_SEC;
use crate::frame::PacketLayout;
use crate::noise::q_function;
use crate::spreading::{ChipSequence, Symbol};

/// Thermal noise power spectral density at 290 K in dBm/Hz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -173.975;

/// A model mapping received signal power to bit error probability.
pub trait BerModel {
    /// Returns the bit error probability at received power `p_rx`.
    fn bit_error_probability(&self, p_rx: DBm) -> Probability;

    /// Returns the packet error probability of the paper's eq. (10):
    /// `Pr_e = 1 − (1 − Pr_bit)^(8·(L_packet − 4))`.
    fn packet_error_probability(&self, p_rx: DBm, packet: PacketLayout) -> Probability {
        let pr_bit = self.bit_error_probability(p_rx);
        pr_bit
            .complement()
            .powf(packet.error_exposed_bits() as f64)
            .complement()
    }
}

impl<T: BerModel + ?Sized> BerModel for &T {
    fn bit_error_probability(&self, p_rx: DBm) -> Probability {
        (**self).bit_error_probability(p_rx)
    }
}

// ---------------------------------------------------------------------------
// Empirical model (paper eq. 1)
// ---------------------------------------------------------------------------

/// The paper's empirical CC2420 bit-error model (eq. 1):
/// `Pr_bit = c · exp(−s · P_Rx[dBm])`, capped at ½.
///
/// # Examples
///
/// ```
/// use wsn_phy::ber::{BerModel, EmpiricalCc2420Ber};
/// use wsn_units::DBm;
///
/// let model = EmpiricalCc2420Ber::paper();
/// let at_90 = model.bit_error_probability(DBm::new(-90.0)).value();
/// assert!(at_90 > 1e-4 && at_90 < 2e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmpiricalCc2420Ber {
    coefficient: f64,
    slope_per_dbm: f64,
}

impl EmpiricalCc2420Ber {
    /// The regression constants published in the paper:
    /// `Pr_bit = 2.35·10⁻³⁰ · exp(−0.659 · P_Rx)`.
    pub fn paper() -> Self {
        EmpiricalCc2420Ber {
            coefficient: 2.35e-30,
            slope_per_dbm: 0.659,
        }
    }

    /// Builds a model from regression constants.
    ///
    /// # Panics
    ///
    /// Panics unless `coefficient > 0` and `slope_per_dbm > 0` (the BER must
    /// decay with increasing received power).
    pub fn from_constants(coefficient: f64, slope_per_dbm: f64) -> Self {
        assert!(coefficient > 0.0, "coefficient must be positive");
        assert!(slope_per_dbm > 0.0, "slope must be positive");
        EmpiricalCc2420Ber {
            coefficient,
            slope_per_dbm,
        }
    }

    /// Returns the multiplicative constant `c`.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// Returns the decay slope `s` per dBm.
    pub fn slope_per_dbm(&self) -> f64 {
        self.slope_per_dbm
    }
}

impl BerModel for EmpiricalCc2420Ber {
    fn bit_error_probability(&self, p_rx: DBm) -> Probability {
        let raw = self.coefficient * (-self.slope_per_dbm * p_rx.dbm()).exp();
        Probability::clamped(raw.min(0.5))
    }
}

// ---------------------------------------------------------------------------
// Analytic hard-decision despreading model
// ---------------------------------------------------------------------------

/// Converts received power into per-chip SNR `E_c/N₀` (linear) against a
/// thermal noise floor with the given effective noise figure.
pub fn chip_snr_linear(p_rx: DBm, noise_figure: Db) -> f64 {
    let n0_dbm_per_hz = THERMAL_NOISE_DBM_PER_HZ + noise_figure.db();
    let noise_in_chip_rate_dbm = n0_dbm_per_hz + 10.0 * CHIP_RATE_CHIPS_PER_SEC.log10();
    Db::new(p_rx.dbm() - noise_in_chip_rate_dbm).to_linear()
}

/// Analytic BER of a hard-decision correlation receiver.
///
/// Chips experience independent errors with probability
/// `p_c = Q(√(2·E_c/N₀))` (antipodal signaling, matched filter). A symbol is
/// decoded wrongly when the corrupted word lies closer to a competitor
/// sequence; a union bound over the family's true distance profile gives the
/// symbol error rate, and the average nibble Hamming distance (8/15·4 bits)
/// converts it to a bit error rate.
///
/// The default noise figure absorbs the CC2420's implementation losses; use
/// [`calibrate_noise_figure`] to fit it to a measured anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HardDecisionDsssBer {
    noise_figure_db: f64,
}

impl HardDecisionDsssBer {
    /// Creates the model with the given effective noise figure.
    pub fn new(noise_figure: Db) -> Self {
        HardDecisionDsssBer {
            noise_figure_db: noise_figure.db(),
        }
    }

    /// Returns the effective noise figure.
    pub fn noise_figure(&self) -> Db {
        Db::new(self.noise_figure_db)
    }

    /// Per-chip error probability at the given received power.
    pub fn chip_error_probability(&self, p_rx: DBm) -> f64 {
        let snr = chip_snr_linear(p_rx, self.noise_figure());
        q_function((2.0 * snr).sqrt())
    }

    /// Symbol error probability by union bound over the distance profile.
    pub fn symbol_error_probability(&self, p_rx: DBm) -> f64 {
        let pc = self.chip_error_probability(p_rx);
        union_bound_symbol_error(pc).min(1.0)
    }
}

impl BerModel for HardDecisionDsssBer {
    fn bit_error_probability(&self, p_rx: DBm) -> Probability {
        // 8/15 of the 4 payload bits differ on average for a uniformly
        // wrong symbol: BER = SER × (32/15)/4.
        let ser = self.symbol_error_probability(p_rx);
        Probability::clamped((ser * 8.0 / 15.0).min(0.5))
    }
}

/// Probability that at least `⌈d/2⌉` of `d` Bernoulli(`p`) chip flips occur,
/// counting half of the exact-tie mass (`d` even ⇒ ties broken randomly).
fn pairwise_error_probability(d: u32, p: f64) -> f64 {
    let mut total = 0.0;
    // Binomial pmf computed iteratively to avoid factorial overflow.
    let q = 1.0 - p;
    let mut pmf = q.powi(d as i32); // P(X = 0)
    let tie = d.is_multiple_of(2);
    let half = d / 2;
    for k in 0..=d {
        if k > 0 {
            pmf *= (d - k + 1) as f64 / k as f64 * (p / q);
        }
        if tie && k == half {
            total += 0.5 * pmf;
        } else if k > half || (!tie && k == half && 2 * k > d) {
            total += pmf;
        }
    }
    total.clamp(0.0, 1.0)
}

/// Union-bound symbol error probability averaged over all 16 transmitted
/// symbols, using the true pairwise distances of the sequence family.
fn union_bound_symbol_error(pc: f64) -> f64 {
    let mut acc = 0.0;
    for tx in Symbol::all() {
        let tx_seq = ChipSequence::for_symbol(tx);
        for other in Symbol::all() {
            if other != tx {
                let d = tx_seq.hamming_distance(ChipSequence::for_symbol(other));
                acc += pairwise_error_probability(d, pc);
            }
        }
    }
    acc / 16.0
}

/// Finds the effective noise figure that makes [`HardDecisionDsssBer`] match
/// a `(received power, BER)` anchor point, by bisection.
///
/// # Panics
///
/// Panics if `target_ber` is outside `(0, 0.5)`.
pub fn calibrate_noise_figure(anchor_p_rx: DBm, target_ber: f64) -> Db {
    assert!(
        target_ber > 0.0 && target_ber < 0.5,
        "target BER must be in (0, 0.5), got {target_ber}"
    );
    let mut lo = 0.0_f64; // noise figure bounds in dB
    let mut hi = 60.0_f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let ber = HardDecisionDsssBer::new(Db::new(mid))
            .bit_error_probability(anchor_p_rx)
            .value();
        if ber < target_ber {
            lo = mid; // need more noise
        } else {
            hi = mid;
        }
    }
    Db::new(0.5 * (lo + hi))
}

// ---------------------------------------------------------------------------
// Standard's closed-form model
// ---------------------------------------------------------------------------

/// The AWGN bit-error expression given in IEEE 802.15.4 for the 2 450 MHz
/// PHY:
///
/// `BER = (8/15)·(1/16)·Σ_{k=2}^{16} (−1)^k·C(16,k)·exp(20·SINR·(1/k − 1))`
///
/// with `SINR` the signal-to-noise ratio in the 2 MHz channel
/// (`P_Rx / (N₀·B)`, linear).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StandardOqpskBer {
    noise_figure_db: f64,
    bandwidth_hz: f64,
}

impl StandardOqpskBer {
    /// Creates the model; the conventional noise bandwidth is the 2 MHz
    /// chip-rate bandwidth.
    pub fn new(noise_figure: Db) -> Self {
        StandardOqpskBer {
            noise_figure_db: noise_figure.db(),
            bandwidth_hz: CHIP_RATE_CHIPS_PER_SEC,
        }
    }

    /// Overrides the noise bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    pub fn with_bandwidth_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "bandwidth must be positive");
        self.bandwidth_hz = hz;
        self
    }

    /// Evaluates the standard's formula at a given linear SINR.
    pub fn ber_at_sinr(sinr: f64) -> f64 {
        let mut sum = 0.0;
        let mut binom = 120.0; // C(16,2)
        for k in 2u32..=16 {
            if k > 2 {
                binom *= (16 - k + 1) as f64 / k as f64;
            }
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign * binom * (20.0 * sinr * (1.0 / k as f64 - 1.0)).exp();
        }
        (8.0 / 15.0 / 16.0 * sum).clamp(0.0, 0.5)
    }
}

impl BerModel for StandardOqpskBer {
    fn bit_error_probability(&self, p_rx: DBm) -> Probability {
        let n0_dbm_per_hz = THERMAL_NOISE_DBM_PER_HZ + self.noise_figure_db;
        let noise_dbm = n0_dbm_per_hz + 10.0 * self.bandwidth_hz.log10();
        let sinr = Db::new(p_rx.dbm() - noise_dbm).to_linear();
        Probability::clamped(Self::ber_at_sinr(sinr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_matches_figure4_window() {
        let m = EmpiricalCc2420Ber::paper();
        // Figure 4 plots BER between 1e-6 and 1e-2 for −94..−85 dBm.
        let at_94 = m.bit_error_probability(DBm::new(-94.0)).value();
        let at_85 = m.bit_error_probability(DBm::new(-85.0)).value();
        assert!(at_94 > 1e-3 && at_94 < 1e-2, "BER(-94) = {at_94}");
        assert!(at_85 > 1e-6 && at_85 < 1e-5, "BER(-85) = {at_85}");
    }

    #[test]
    fn empirical_monotone_decreasing_in_power() {
        let m = EmpiricalCc2420Ber::paper();
        let mut last = 1.0;
        for dbm in -100..=-60 {
            let b = m.bit_error_probability(DBm::new(dbm as f64)).value();
            assert!(b <= last, "BER not decreasing at {dbm} dBm");
            last = b;
        }
    }

    #[test]
    fn empirical_caps_at_half() {
        let m = EmpiricalCc2420Ber::paper();
        assert_eq!(m.bit_error_probability(DBm::new(-200.0)).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "slope must be positive")]
    fn negative_slope_rejected() {
        let _ = EmpiricalCc2420Ber::from_constants(1e-30, -0.5);
    }

    #[test]
    fn packet_error_of_tiny_ber_is_tiny() {
        let m = EmpiricalCc2420Ber::paper();
        let layout = PacketLayout::with_payload(120).unwrap();
        let pe = m.packet_error_probability(DBm::new(-60.0), layout).value();
        assert!(pe < 1e-9, "Pr_e = {pe}");
        // And at -90 dBm it is substantial: 1 − (1−1.34e−4)^1032 ≈ 0.13.
        let pe_90 = m.packet_error_probability(DBm::new(-90.0), layout).value();
        assert!(pe_90 > 0.10 && pe_90 < 0.16, "Pr_e(-90) = {pe_90}");
    }

    #[test]
    fn pairwise_error_probability_limits() {
        assert_eq!(pairwise_error_probability(12, 0.0), 0.0);
        // With p = 0.5 every word is equidistant: probability 1/2 by tie.
        assert!((pairwise_error_probability(12, 0.5) - 0.5).abs() < 1e-9);
        // Monotone in p.
        let lo = pairwise_error_probability(14, 0.01);
        let hi = pairwise_error_probability(14, 0.1);
        assert!(lo < hi);
    }

    #[test]
    fn hard_decision_monotone_and_calibratable() {
        let anchor = DBm::new(-90.0);
        let target = 1.34e-4;
        let nf = calibrate_noise_figure(anchor, target);
        let model = HardDecisionDsssBer::new(nf);
        let got = model.bit_error_probability(anchor).value();
        assert!(
            (got.log10() - target.log10()).abs() < 0.05,
            "calibrated BER {got} vs target {target} (NF {nf})"
        );
        // Monotone decreasing.
        let worse = model.bit_error_probability(DBm::new(-93.0)).value();
        let better = model.bit_error_probability(DBm::new(-87.0)).value();
        assert!(worse > got && got > better);
    }

    #[test]
    fn calibrated_noise_figure_is_physical() {
        // Effective NF should be positive and below 40 dB even including
        // the CC2420's hard-decision implementation losses.
        let nf = calibrate_noise_figure(DBm::new(-90.0), 1.34e-4);
        assert!(nf.db() > 0.0 && nf.db() < 40.0, "NF = {nf}");
    }

    #[test]
    fn standard_formula_reference_behaviour() {
        // At very high SINR the BER vanishes; at zero SINR it approaches
        // the random-guess bound for 16-ary orthogonal signaling (≈ 1/2).
        assert!(StandardOqpskBer::ber_at_sinr(4.0) < 1e-12);
        let low = StandardOqpskBer::ber_at_sinr(0.0);
        assert!(low > 0.4 && low <= 0.5, "BER(0) = {low}");
        // Strictly decreasing over the useful range.
        let mut last = 1.0;
        for i in 0..40 {
            let sinr = i as f64 * 0.05;
            let b = StandardOqpskBer::ber_at_sinr(sinr);
            assert!(b <= last + 1e-15);
            last = b;
        }
    }

    #[test]
    fn standard_model_through_ber_trait() {
        let m = StandardOqpskBer::new(Db::new(10.0));
        let worse = m.bit_error_probability(DBm::new(-100.0)).value();
        let better = m.bit_error_probability(DBm::new(-80.0)).value();
        assert!(worse > better);
        assert!(better < 1e-6);
    }

    #[test]
    fn chip_snr_scales_with_power_and_nf() {
        let a = chip_snr_linear(DBm::new(-90.0), Db::new(10.0));
        let b = chip_snr_linear(DBm::new(-87.0), Db::new(10.0));
        assert!((b / a - 2.0).abs() < 1e-2); // +3 dB ⇒ ×2
        let c = chip_snr_linear(DBm::new(-90.0), Db::new(13.0));
        assert!((a / c - 2.0).abs() < 1e-2); // +3 dB NF ⇒ ÷2
    }
}
