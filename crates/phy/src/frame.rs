//! Frame layouts: PPDU/MPDU wire formats, the ITU-T CRC-16 frame check
//! sequence, and the paper's packet-overhead arithmetic.
//!
//! Two views coexist deliberately:
//!
//! * [`MacFrame`]/[`Ppdu`] are the *wire-accurate* 802.15.4-2003 formats
//!   (used by the bit-level simulators and for serialization round-trips);
//! * [`PacketLayout`] is the *paper's* accounting — a total PHY+MAC overhead
//!   of `L_o = 13` bytes on top of the payload (preamble 4 + SFD 1 + PHR 1 +
//!   frame control 2 + sequence 1 + short addresses 4), with the 2-byte FCS
//!   not counted. We keep both because every equation of the paper is
//!   expressed in terms of `L_o + L`, and silently "fixing" the byte count
//!   would shift every reproduced figure.

use core::fmt;

use wsn_units::Seconds;

use crate::consts::{self, BYTE_PERIOD_US, MAX_PHY_PACKET_SIZE, PHR_BYTES, SHR_BYTES};

// ---------------------------------------------------------------------------
// Frame check sequence
// ---------------------------------------------------------------------------

/// Computes the 802.15.4 frame check sequence over an MPDU body.
///
/// The standard specifies the ITU-T CRC-16 (generator
/// `x¹⁶ + x¹² + x⁵ + 1`), processed least-significant-bit first with a zero
/// initial remainder — i.e. the classic "Kermit" CRC.
///
/// # Examples
///
/// ```
/// use wsn_phy::frame::crc16_itu_t;
///
/// // Canonical CRC-16/KERMIT check value.
/// assert_eq!(crc16_itu_t(b"123456789"), 0x2189);
/// ```
pub fn crc16_itu_t(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in bytes {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408; // reflected 0x1021
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

// ---------------------------------------------------------------------------
// Addresses and frame control
// ---------------------------------------------------------------------------

/// A MAC-layer device address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Address {
    /// Address absent (e.g. beacon destination).
    None,
    /// 16-bit short address, assigned at association.
    Short(u16),
    /// 64-bit extended (EUI-64) address.
    Extended(u64),
}

impl Address {
    /// Returns the addressing-mode field value (0, 2 or 3).
    #[inline]
    pub fn mode_bits(self) -> u16 {
        match self {
            Address::None => 0,
            Address::Short(_) => 2,
            Address::Extended(_) => 3,
        }
    }

    /// Returns the encoded length in bytes (0, 2 or 8).
    #[inline]
    pub fn encoded_len(self) -> usize {
        match self {
            Address::None => 0,
            Address::Short(_) => 2,
            Address::Extended(_) => 8,
        }
    }

    fn write(self, out: &mut Vec<u8>) {
        match self {
            Address::None => {}
            Address::Short(a) => out.extend_from_slice(&a.to_le_bytes()),
            Address::Extended(a) => out.extend_from_slice(&a.to_le_bytes()),
        }
    }

    fn read(mode: u16, buf: &[u8], pos: &mut usize) -> Result<Address, FrameError> {
        match mode {
            0 => Ok(Address::None),
            2 => {
                let bytes = take(buf, pos, 2)?;
                Ok(Address::Short(u16::from_le_bytes([bytes[0], bytes[1]])))
            }
            3 => {
                let bytes = take(buf, pos, 8)?;
                let mut a = [0u8; 8];
                a.copy_from_slice(bytes);
                Ok(Address::Extended(u64::from_le_bytes(a)))
            }
            _ => Err(FrameError::InvalidAddressingMode(mode as u8)),
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Address::None => write!(f, "-"),
            Address::Short(a) => write!(f, "0x{a:04X}"),
            Address::Extended(a) => write!(f, "0x{a:016X}"),
        }
    }
}

/// MAC frame type (frame-control bits 0–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Beacon frame sent by the coordinator.
    Beacon,
    /// Data frame.
    Data,
    /// Acknowledgement frame.
    Ack,
    /// MAC command frame (association, GTS requests, …).
    MacCommand,
}

impl FrameType {
    /// Returns the 3-bit wire encoding.
    #[inline]
    pub fn bits(self) -> u16 {
        match self {
            FrameType::Beacon => 0,
            FrameType::Data => 1,
            FrameType::Ack => 2,
            FrameType::MacCommand => 3,
        }
    }

    /// Decodes the 3-bit wire encoding.
    #[inline]
    pub fn from_bits(bits: u16) -> Result<Self, FrameError> {
        match bits {
            0 => Ok(FrameType::Beacon),
            1 => Ok(FrameType::Data),
            2 => Ok(FrameType::Ack),
            3 => Ok(FrameType::MacCommand),
            other => Err(FrameError::InvalidFrameType(other as u8)),
        }
    }
}

/// Decoded frame-control field (first two bytes of every MPDU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameControl {
    /// Frame type.
    pub frame_type: FrameType,
    /// Security-enabled flag (modeled but never set in this workspace).
    pub security: bool,
    /// More data pending at the coordinator (used by indirect transmission).
    pub frame_pending: bool,
    /// Acknowledgement requested.
    pub ack_request: bool,
    /// Intra-PAN: source PAN id omitted when it equals the destination's.
    pub intra_pan: bool,
    /// Destination addressing mode (bits 10–11), implied by the address.
    pub dest_mode: u16,
    /// Source addressing mode (bits 14–15), implied by the address.
    pub src_mode: u16,
}

impl FrameControl {
    /// Encodes into the 16-bit wire value.
    pub fn bits(self) -> u16 {
        self.frame_type.bits()
            | (self.security as u16) << 3
            | (self.frame_pending as u16) << 4
            | (self.ack_request as u16) << 5
            | (self.intra_pan as u16) << 6
            | self.dest_mode << 10
            | self.src_mode << 14
    }

    /// Decodes from the 16-bit wire value.
    pub fn from_bits(v: u16) -> Result<Self, FrameError> {
        Ok(FrameControl {
            frame_type: FrameType::from_bits(v & 0x7)?,
            security: v & (1 << 3) != 0,
            frame_pending: v & (1 << 4) != 0,
            ack_request: v & (1 << 5) != 0,
            intra_pan: v & (1 << 6) != 0,
            dest_mode: (v >> 10) & 0x3,
            src_mode: (v >> 14) & 0x3,
        })
    }
}

// ---------------------------------------------------------------------------
// MAC frames
// ---------------------------------------------------------------------------

/// Errors raised while encoding or decoding frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The MPDU would exceed `aMaxPHYPacketSize` (127 bytes).
    TooLong(usize),
    /// Input ended before the structure was complete.
    Truncated,
    /// Frame-control frame-type bits are reserved.
    InvalidFrameType(u8),
    /// Frame-control addressing-mode bits are reserved.
    InvalidAddressingMode(u8),
    /// The frame check sequence did not match the body.
    FcsMismatch {
        /// FCS carried by the frame.
        expected: u16,
        /// FCS recomputed over the received body.
        computed: u16,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong(n) => {
                write!(f, "mpdu of {n} bytes exceeds aMaxPHYPacketSize (127)")
            }
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::InvalidFrameType(b) => write!(f, "reserved frame type {b}"),
            FrameError::InvalidAddressingMode(b) => {
                write!(f, "reserved addressing mode {b}")
            }
            FrameError::FcsMismatch { expected, computed } => write!(
                f,
                "fcs mismatch: frame carries 0x{expected:04X}, computed 0x{computed:04X}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], FrameError> {
    if *pos + n > buf.len() {
        return Err(FrameError::Truncated);
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

/// A generic MAC protocol data unit.
///
/// Covers the three frame kinds the paper's uplink exercise needs (beacon,
/// data, ACK) plus MAC commands. Serialization appends the 2-byte FCS;
/// parsing verifies it.
///
/// # Examples
///
/// ```
/// use wsn_phy::frame::{Address, MacFrame};
///
/// let frame = MacFrame::data(
///     42,
///     0x1234,
///     Address::Short(0x0001),
///     Address::Short(0x00C0),
///     b"sensor reading".to_vec(),
///     true,
/// );
/// let wire = frame.serialize()?;
/// let back = MacFrame::parse(&wire)?;
/// assert_eq!(back, frame);
/// # Ok::<(), wsn_phy::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame {
    /// Frame control flags (`dest_mode`/`src_mode` are overwritten from the
    /// addresses during serialization).
    pub control: FrameControl,
    /// Data sequence number.
    pub sequence: u8,
    /// Destination PAN identifier (present when `dest` is present).
    pub dest_pan: Option<u16>,
    /// Destination address.
    pub dest: Address,
    /// Source PAN identifier (omitted when intra-PAN).
    pub src_pan: Option<u16>,
    /// Source address.
    pub src: Address,
    /// MAC payload.
    pub payload: Vec<u8>,
}

impl MacFrame {
    /// Builds an uplink data frame with short addressing (the paper's
    /// configuration: intra-PAN, 4 address bytes total).
    pub fn data(
        sequence: u8,
        pan: u16,
        dest: Address,
        src: Address,
        payload: Vec<u8>,
        ack_request: bool,
    ) -> Self {
        MacFrame {
            control: FrameControl {
                frame_type: FrameType::Data,
                security: false,
                frame_pending: false,
                ack_request,
                intra_pan: true,
                dest_mode: dest.mode_bits(),
                src_mode: src.mode_bits(),
            },
            sequence,
            dest_pan: Some(pan),
            dest,
            src_pan: None,
            src,
            payload,
        }
    }

    /// Builds an acknowledgement frame (5-byte MPDU).
    pub fn ack(sequence: u8, frame_pending: bool) -> Self {
        MacFrame {
            control: FrameControl {
                frame_type: FrameType::Ack,
                security: false,
                frame_pending,
                ack_request: false,
                intra_pan: false,
                dest_mode: 0,
                src_mode: 0,
            },
            sequence,
            dest_pan: None,
            dest: Address::None,
            src_pan: None,
            src: Address::None,
            payload: Vec::new(),
        }
    }

    /// Builds a beacon frame carrying a superframe specification payload.
    pub fn beacon(sequence: u8, pan: u16, src: Address, payload: Vec<u8>) -> Self {
        MacFrame {
            control: FrameControl {
                frame_type: FrameType::Beacon,
                security: false,
                frame_pending: false,
                ack_request: false,
                intra_pan: false,
                dest_mode: 0,
                src_mode: src.mode_bits(),
            },
            sequence,
            dest_pan: None,
            dest: Address::None,
            src_pan: Some(pan),
            src,
            payload,
        }
    }

    /// Serializes to MPDU bytes, including the trailing FCS.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if the MPDU would exceed 127 bytes.
    pub fn serialize(&self) -> Result<Vec<u8>, FrameError> {
        let mut control = self.control;
        control.dest_mode = self.dest.mode_bits();
        control.src_mode = self.src.mode_bits();

        let mut out = Vec::with_capacity(self.mpdu_len());
        out.extend_from_slice(&control.bits().to_le_bytes());
        out.push(self.sequence);
        if let Some(pan) = self.dest_pan {
            out.extend_from_slice(&pan.to_le_bytes());
        }
        self.dest.write(&mut out);
        if let Some(pan) = self.src_pan {
            out.extend_from_slice(&pan.to_le_bytes());
        }
        self.src.write(&mut out);
        out.extend_from_slice(&self.payload);
        let fcs = crc16_itu_t(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        if out.len() > MAX_PHY_PACKET_SIZE {
            return Err(FrameError::TooLong(out.len()));
        }
        Ok(out)
    }

    /// Parses an MPDU, verifying the FCS.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on truncation, reserved field encodings, or an
    /// FCS mismatch.
    pub fn parse(mpdu: &[u8]) -> Result<Self, FrameError> {
        if mpdu.len() < 5 {
            return Err(FrameError::Truncated);
        }
        let (body, fcs_bytes) = mpdu.split_at(mpdu.len() - 2);
        let expected = u16::from_le_bytes([fcs_bytes[0], fcs_bytes[1]]);
        let computed = crc16_itu_t(body);
        if expected != computed {
            return Err(FrameError::FcsMismatch { expected, computed });
        }

        let mut pos = 0usize;
        let fc_bytes = take(body, &mut pos, 2)?;
        let control = FrameControl::from_bits(u16::from_le_bytes([fc_bytes[0], fc_bytes[1]]))?;
        let sequence = take(body, &mut pos, 1)?[0];

        let (dest_pan, dest) = if control.dest_mode != 0 {
            let pan_bytes = take(body, &mut pos, 2)?;
            let pan = u16::from_le_bytes([pan_bytes[0], pan_bytes[1]]);
            (Some(pan), Address::read(control.dest_mode, body, &mut pos)?)
        } else {
            (None, Address::None)
        };
        let (src_pan, src) = if control.src_mode != 0 {
            let pan = if control.intra_pan {
                None
            } else {
                let pan_bytes = take(body, &mut pos, 2)?;
                Some(u16::from_le_bytes([pan_bytes[0], pan_bytes[1]]))
            };
            (pan, Address::read(control.src_mode, body, &mut pos)?)
        } else {
            (None, Address::None)
        };
        let payload = body[pos..].to_vec();

        Ok(MacFrame {
            control,
            sequence,
            dest_pan,
            dest,
            src_pan,
            src,
            payload,
        })
    }

    /// Returns the MPDU length in bytes (including FCS) without serializing.
    pub fn mpdu_len(&self) -> usize {
        2 + 1
            + self.dest_pan.map_or(0, |_| 2)
            + self.dest.encoded_len()
            + self.src_pan.map_or(0, |_| 2)
            + self.src.encoded_len()
            + self.payload.len()
            + 2
    }
}

/// A PHY protocol data unit: synchronization header, PHY header and PSDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ppdu {
    /// The MAC frame bytes (PSDU).
    pub psdu: Vec<u8>,
}

impl Ppdu {
    /// Wraps a PSDU.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if the PSDU exceeds 127 bytes.
    pub fn new(psdu: Vec<u8>) -> Result<Self, FrameError> {
        if psdu.len() > MAX_PHY_PACKET_SIZE {
            return Err(FrameError::TooLong(psdu.len()));
        }
        Ok(Ppdu { psdu })
    }

    /// Serializes preamble (4 × 0x00), SFD (0xA7), PHR (length) and PSDU.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SHR_BYTES + PHR_BYTES + self.psdu.len());
        out.extend_from_slice(&[0x00; 4]);
        out.push(0xA7);
        out.push(self.psdu.len() as u8);
        out.extend_from_slice(&self.psdu);
        out
    }

    /// Total on-air length in bytes.
    pub fn air_len(&self) -> usize {
        SHR_BYTES + PHR_BYTES + self.psdu.len()
    }

    /// On-air duration at 250 kb/s.
    pub fn air_time(&self) -> Seconds {
        consts::bytes(self.air_len())
    }
}

// ---------------------------------------------------------------------------
// The paper's packet accounting
// ---------------------------------------------------------------------------

/// The paper's PHY+MAC overhead `L_o` in bytes: preamble 4 + SFD 1 + PHR 1 +
/// frame control 2 + sequence 1 + short addresses 4. (The FCS is not counted
/// by the paper; see DESIGN.md §5.)
pub const PAPER_OVERHEAD_BYTES: usize = 13;

/// Bytes of the packet that are acquired before bit decisions matter (the
/// synchronization preamble), excluded from error exposure in eq. (10).
pub const PAPER_PREAMBLE_BYTES: usize = 4;

/// The paper's packet-size accounting: a payload of `L` bytes plus the fixed
/// `L_o = 13`-byte overhead.
///
/// All model equations consume this type: `T_packet = (L_o + L)·T_B`
/// (eq. 3) and the error-exposed bit count `8·(L_packet − 4)` (eq. 10).
///
/// # Examples
///
/// ```
/// use wsn_phy::frame::PacketLayout;
///
/// let packet = PacketLayout::with_payload(120)?;
/// assert_eq!(packet.total_bytes(), 133);
/// assert!((packet.duration().millis() - 4.256).abs() < 1e-9);
/// assert_eq!(packet.error_exposed_bits(), 8 * 129);
/// # Ok::<(), wsn_phy::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PacketLayout {
    payload_bytes: usize,
}

impl PacketLayout {
    /// Creates a layout for a payload of `L` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if `L` exceeds the paper's maximum of
    /// 123 bytes.
    pub fn with_payload(payload_bytes: usize) -> Result<Self, FrameError> {
        if payload_bytes > consts::MAX_PAPER_PAYLOAD {
            return Err(FrameError::TooLong(payload_bytes + PAPER_OVERHEAD_BYTES));
        }
        Ok(PacketLayout { payload_bytes })
    }

    /// Payload size `L` in bytes.
    #[inline]
    pub fn payload_bytes(self) -> usize {
        self.payload_bytes
    }

    /// Payload size in bits.
    #[inline]
    pub fn payload_bits(self) -> usize {
        self.payload_bytes * 8
    }

    /// Total packet size `L_packet = L_o + L` in bytes.
    #[inline]
    pub fn total_bytes(self) -> usize {
        self.payload_bytes + PAPER_OVERHEAD_BYTES
    }

    /// On-air duration `T_packet = (L_o + L)·T_B` (paper eq. 3).
    #[inline]
    pub fn duration(self) -> Seconds {
        Seconds::from_micros(self.total_bytes() as f64 * BYTE_PERIOD_US)
    }

    /// Number of bits exposed to channel errors: `8·(L_packet − 4)`
    /// (paper eq. 10 — the preamble does not carry decodable data).
    #[inline]
    pub fn error_exposed_bits(self) -> u32 {
        8 * (self.total_bytes() - PAPER_PREAMBLE_BYTES) as u32
    }
}

/// On-air accounting for the acknowledgement frame: 5-byte MPDU plus SHR and
/// PHR, 11 bytes ⇒ 352 µs at 250 kb/s.
pub fn ack_layout_bytes() -> usize {
    SHR_BYTES + PHR_BYTES + 5
}

/// On-air duration of an acknowledgement frame.
pub fn ack_duration() -> Seconds {
    consts::bytes(ack_layout_bytes())
}

/// Default beacon frame accounting used by the model: 13-byte MPDU (frame
/// control 2 + sequence 1 + source PAN 2 + source short address 2 +
/// superframe spec 2 + GTS spec 1 + pending spec 1 + FCS 2) plus SHR and
/// PHR ⇒ 19 bytes ⇒ 608 µs. The paper does not state its beacon length;
/// this is the minimal standard-compliant beacon (DESIGN.md §5).
pub fn beacon_layout_bytes() -> usize {
    SHR_BYTES + PHR_BYTES + 13
}

/// On-air duration of the default beacon.
pub fn beacon_duration() -> Seconds {
    consts::bytes(beacon_layout_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_check_value() {
        assert_eq!(crc16_itu_t(b"123456789"), 0x2189);
        assert_eq!(crc16_itu_t(b""), 0x0000);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc16_itu_t(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc16_itu_t(&corrupted),
                    base,
                    "flip {byte}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn data_frame_roundtrip() {
        let frame = MacFrame::data(
            7,
            0xBEEF,
            Address::Short(0x0000),
            Address::Short(0x0042),
            vec![1, 2, 3, 4, 5],
            true,
        );
        let wire = frame.serialize().unwrap();
        // FC 2 + seq 1 + dest PAN 2 + dest 2 + src 2 (intra-PAN) + payload 5
        // + FCS 2 = 16 bytes.
        assert_eq!(wire.len(), 16);
        assert_eq!(frame.mpdu_len(), wire.len());
        assert_eq!(MacFrame::parse(&wire).unwrap(), frame);
    }

    #[test]
    fn extended_address_roundtrip() {
        let mut frame = MacFrame::data(
            1,
            0x0001,
            Address::Extended(0xDEAD_BEEF_CAFE_F00D),
            Address::Extended(0x0123_4567_89AB_CDEF),
            vec![0xAA; 10],
            false,
        );
        frame.control.intra_pan = false;
        frame.src_pan = Some(0x0002);
        let wire = frame.serialize().unwrap();
        assert_eq!(MacFrame::parse(&wire).unwrap(), frame);
    }

    #[test]
    fn ack_frame_is_five_bytes() {
        let wire = MacFrame::ack(200, false).serialize().unwrap();
        assert_eq!(wire.len(), 5);
        let parsed = MacFrame::parse(&wire).unwrap();
        assert_eq!(parsed.sequence, 200);
        assert_eq!(parsed.control.frame_type, FrameType::Ack);
    }

    #[test]
    fn beacon_frame_roundtrip() {
        let frame = MacFrame::beacon(
            3,
            0x1111,
            Address::Short(0x0000),
            vec![0xFF, 0xCF, 0x00, 0x00],
        );
        let wire = frame.serialize().unwrap();
        let parsed = MacFrame::parse(&wire).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(parsed.control.frame_type, FrameType::Beacon);
    }

    #[test]
    fn corrupted_fcs_is_rejected() {
        let mut wire = MacFrame::ack(9, false).serialize().unwrap();
        wire[1] ^= 0x10;
        match MacFrame::parse(&wire) {
            Err(FrameError::FcsMismatch { .. }) => {}
            other => panic!("expected FCS mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_rejected() {
        assert_eq!(MacFrame::parse(&[1, 2, 3]), Err(FrameError::Truncated));
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let frame = MacFrame::data(
            0,
            0,
            Address::Short(0),
            Address::Short(1),
            vec![0u8; 120],
            true,
        );
        assert!(matches!(frame.serialize(), Err(FrameError::TooLong(_))));
    }

    #[test]
    fn ppdu_layout() {
        let ppdu = Ppdu::new(vec![0xAB; 10]).unwrap();
        let wire = ppdu.serialize();
        assert_eq!(wire.len(), 16);
        assert_eq!(&wire[..4], &[0, 0, 0, 0]);
        assert_eq!(wire[4], 0xA7);
        assert_eq!(wire[5], 10);
        assert!((ppdu.air_time().micros() - 512.0).abs() < 1e-9);
        assert!(Ppdu::new(vec![0; 128]).is_err());
    }

    #[test]
    fn paper_packet_layout() {
        let p = PacketLayout::with_payload(120).unwrap();
        assert_eq!(p.payload_bytes(), 120);
        assert_eq!(p.payload_bits(), 960);
        assert_eq!(p.total_bytes(), 133);
        assert!((p.duration().millis() - 4.256).abs() < 1e-9);
        assert_eq!(p.error_exposed_bits(), 1032);

        let max = PacketLayout::with_payload(123).unwrap();
        assert_eq!(max.total_bytes(), 136);
        assert!(PacketLayout::with_payload(124).is_err());
    }

    #[test]
    fn ack_and_beacon_durations() {
        assert_eq!(ack_layout_bytes(), 11);
        assert!((ack_duration().micros() - 352.0).abs() < 1e-9);
        assert_eq!(beacon_layout_bytes(), 19);
        assert!((beacon_duration().micros() - 608.0).abs() < 1e-9);
    }

    #[test]
    fn frame_control_bits_roundtrip() {
        let fc = FrameControl {
            frame_type: FrameType::Data,
            security: false,
            frame_pending: true,
            ack_request: true,
            intra_pan: true,
            dest_mode: 2,
            src_mode: 3,
        };
        assert_eq!(FrameControl::from_bits(fc.bits()).unwrap(), fc);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            FrameError::TooLong(130).to_string(),
            "mpdu of 130 bytes exceeds aMaxPHYPacketSize (127)"
        );
        assert!(FrameError::FcsMismatch {
            expected: 1,
            computed: 2
        }
        .to_string()
        .contains("0x0001"));
    }
}
