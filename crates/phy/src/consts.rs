//! Constants of the IEEE 802.15.4-2003 physical layer, 2 450 MHz band.
//!
//! All durations are also provided as [`Seconds`] helpers so the rest of the
//! workspace never hand-computes microsecond values.

use wsn_units::{DataRate, Frequency, Seconds};

/// Chip rate of the 2 450 MHz DSSS PHY: 2 Mchip/s.
pub const CHIP_RATE_CHIPS_PER_SEC: f64 = 2_000_000.0;

/// Number of chips in one pseudo-noise sequence (one data symbol).
pub const CHIPS_PER_SYMBOL: u32 = 32;

/// Number of payload bits carried by one symbol (one hexadecimal digit).
pub const BITS_PER_SYMBOL: u32 = 4;

/// Symbol rate: 62.5 ksymbol/s.
pub const SYMBOL_RATE_SYMBOLS_PER_SEC: f64 = CHIP_RATE_CHIPS_PER_SEC / CHIPS_PER_SYMBOL as f64;

/// Gross bit rate: 250 kb/s.
pub const BIT_RATE_BPS: f64 = SYMBOL_RATE_SYMBOLS_PER_SEC * BITS_PER_SYMBOL as f64;

/// Symbol period `T_S` = 16 µs.
pub const SYMBOL_PERIOD_US: f64 = 16.0;

/// Byte period `T_B` = 32 µs (two symbols per byte).
pub const BYTE_PERIOD_US: f64 = 32.0;

/// Number of channels in the 2 450 MHz band.
pub const NUM_CHANNELS_2450: u8 = 16;

/// First channel number of the 2 450 MHz band (channels 11–26).
pub const FIRST_CHANNEL_2450: u8 = 11;

/// Maximum PHY service data unit (MPDU) size in bytes (`aMaxPHYPacketSize`).
pub const MAX_PHY_PACKET_SIZE: usize = 127;

/// Maximum data payload the paper works with (123 bytes), i.e. the MPDU
/// capacity left after the paper's 13-byte PHY+MAC overhead less the
/// preamble and SFD which precede the MPDU.
pub const MAX_PAPER_PAYLOAD: usize = 123;

/// PHY preamble length in bytes (4 bytes of zeros).
pub const PREAMBLE_BYTES: usize = 4;

/// Start-of-frame delimiter length in bytes.
pub const SFD_BYTES: usize = 1;

/// PHY header (frame length field) in bytes.
pub const PHR_BYTES: usize = 1;

/// Synchronization header (preamble + SFD) in bytes.
pub const SHR_BYTES: usize = PREAMBLE_BYTES + SFD_BYTES;

/// Returns the symbol period as a time span.
#[inline]
pub fn symbol_period() -> Seconds {
    Seconds::from_micros(SYMBOL_PERIOD_US)
}

/// Returns the byte period as a time span.
#[inline]
pub fn byte_period() -> Seconds {
    Seconds::from_micros(BYTE_PERIOD_US)
}

/// Returns the gross data rate of the 2 450 MHz PHY.
#[inline]
pub fn bit_rate() -> DataRate {
    DataRate::from_bps(BIT_RATE_BPS)
}

/// Returns the duration of a transmission of `n` symbols.
#[inline]
pub fn symbols(n: u32) -> Seconds {
    Seconds::from_micros(SYMBOL_PERIOD_US * n as f64)
}

/// Returns the duration of a transmission of `n` bytes.
#[inline]
pub fn bytes(n: usize) -> Seconds {
    Seconds::from_micros(BYTE_PERIOD_US * n as f64)
}

/// Returns the center frequency of a 2 450 MHz-band channel.
///
/// Channels are numbered 11–26 as in the standard:
/// `F_c = 2405 + 5 (k − 11) MHz`.
///
/// # Panics
///
/// Panics if `channel` is outside `11..=26`.
#[inline]
pub fn channel_center_frequency(channel: u8) -> Frequency {
    assert!(
        (FIRST_CHANNEL_2450..FIRST_CHANNEL_2450 + NUM_CHANNELS_2450).contains(&channel),
        "2450 MHz band channels are 11..=26, got {channel}"
    );
    Frequency::from_mhz(2405.0 + 5.0 * (channel - FIRST_CHANNEL_2450) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_match_standard() {
        assert_eq!(SYMBOL_RATE_SYMBOLS_PER_SEC, 62_500.0);
        assert_eq!(BIT_RATE_BPS, 250_000.0);
    }

    #[test]
    fn periods_match_paper() {
        assert!((symbol_period().micros() - 16.0).abs() < 1e-12);
        assert!((byte_period().micros() - 32.0).abs() < 1e-12);
        // One symbol carries 32 chips at 2 Mchip/s: 16 µs. Consistency:
        let from_chips = CHIPS_PER_SYMBOL as f64 / CHIP_RATE_CHIPS_PER_SEC * 1e6;
        assert!((from_chips - SYMBOL_PERIOD_US).abs() < 1e-12);
    }

    #[test]
    fn packet_duration_helpers() {
        // The paper: a maximal 123-byte payload packet (133 bytes total)
        // takes 4.256 ms; a byte takes 32 µs.
        assert!((bytes(133).millis() - 4.256).abs() < 1e-9);
        assert!((symbols(20).micros() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn channel_frequencies() {
        assert!((channel_center_frequency(11).mhz() - 2405.0).abs() < 1e-9);
        assert!((channel_center_frequency(26).mhz() - 2480.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "channels are 11..=26")]
    fn channel_out_of_band_panics() {
        let _ = channel_center_frequency(10);
    }

    #[test]
    fn header_sizes() {
        assert_eq!(SHR_BYTES, 5);
        assert_eq!(SHR_BYTES + PHR_BYTES, 6);
    }
}
