//! Exponential regression, as applied by the paper to its BER measurements.
//!
//! The paper fits `Pr_bit = c · exp(−s · P_Rx)` to the testbench points of
//! Figure 4 by linear least squares on `ln(Pr_bit)`. [`ExponentialFit`]
//! reproduces exactly that procedure so the chip-level simulator's output
//! can be reduced to an [`EmpiricalCc2420Ber`]-shaped model.
//!
//! [`EmpiricalCc2420Ber`]: crate::ber::EmpiricalCc2420Ber

use core::fmt;

use crate::ber::EmpiricalCc2420Ber;

/// Errors raised by the regression routines.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionError {
    /// Fewer than two points, or all x-values identical.
    Degenerate,
    /// A y-value was zero or negative, so its logarithm is undefined.
    NonPositiveSample(f64),
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::Degenerate => {
                write!(f, "regression needs at least two distinct x-values")
            }
            RegressionError::NonPositiveSample(y) => {
                write!(f, "cannot fit exponential through non-positive sample {y}")
            }
        }
    }
}

impl std::error::Error for RegressionError {}

/// Result of fitting `y = c · exp(b · x)` by least squares on `ln y`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExponentialFit {
    ln_c: f64,
    b: f64,
    r_squared: f64,
}

impl ExponentialFit {
    /// Fits the model to `(x, y)` points.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::NonPositiveSample`] if any `y ≤ 0` and
    /// [`RegressionError::Degenerate`] without two distinct x-values.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, RegressionError> {
        if points.len() < 2 {
            return Err(RegressionError::Degenerate);
        }
        for &(_, y) in points {
            if y <= 0.0 || !y.is_finite() {
                return Err(RegressionError::NonPositiveSample(y));
            }
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1.ln()).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1.ln()).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Err(RegressionError::Degenerate);
        }
        let b = (n * sxy - sx * sy) / denom;
        let ln_c = (sy - b * sx) / n;

        // Coefficient of determination in log space.
        let mean_ln = sy / n;
        let ss_tot: f64 = points.iter().map(|p| (p.1.ln() - mean_ln).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1.ln() - (ln_c + b * p.0)).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };

        Ok(ExponentialFit { ln_c, b, r_squared })
    }

    /// The multiplicative constant `c`.
    pub fn coefficient(&self) -> f64 {
        self.ln_c.exp()
    }

    /// The exponent slope `b` (per unit of `x`).
    pub fn slope(&self) -> f64 {
        self.b
    }

    /// Goodness of fit in log space, `R² ∈ [0, 1]` for meaningful fits.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Evaluates the fitted model at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        (self.ln_c + self.b * x).exp()
    }

    /// Converts to the paper's BER-model form `c · exp(−s·P_Rx)`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::Degenerate`] if the fitted slope is
    /// non-negative — a BER curve must decay with received power.
    pub fn to_ber_model(&self) -> Result<EmpiricalCc2420Ber, RegressionError> {
        if self.b >= 0.0 {
            return Err(RegressionError::Degenerate);
        }
        Ok(EmpiricalCc2420Ber::from_constants(
            self.coefficient(),
            -self.b,
        ))
    }
}

impl fmt::Display for ExponentialFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.3e} · exp({:.4}·x)  (R² = {:.4})",
            self.coefficient(),
            self.b,
            self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_exponential() {
        let points: Vec<(f64, f64)> = (-94..=-85)
            .map(|x| (x as f64, 2.35e-30 * (-0.659 * x as f64).exp()))
            .collect();
        let fit = ExponentialFit::fit(&points).unwrap();
        assert!((fit.slope() + 0.659).abs() < 1e-9, "slope {}", fit.slope());
        assert!(
            (fit.coefficient().log10() - 2.35e-30_f64.log10()).abs() < 1e-6,
            "coefficient {}",
            fit.coefficient()
        );
        assert!(fit.r_squared() > 0.999_999);
    }

    #[test]
    fn eval_interpolates() {
        let points = vec![(0.0, 1.0), (1.0, core::f64::consts::E)];
        let fit = ExponentialFit::fit(&points).unwrap();
        assert!((fit.eval(0.5) - (0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn to_ber_model_roundtrip() {
        let points: Vec<(f64, f64)> = (-94..=-85)
            .map(|x| (x as f64, 1e-29 * (-0.70 * x as f64).exp()))
            .collect();
        let model = ExponentialFit::fit(&points)
            .unwrap()
            .to_ber_model()
            .unwrap();
        assert!((model.slope_per_dbm() - 0.70).abs() < 1e-9);
    }

    #[test]
    fn rising_fit_cannot_be_ber_model() {
        let points = vec![(0.0, 1e-6), (1.0, 1e-5), (2.0, 1e-4)];
        let fit = ExponentialFit::fit(&points).unwrap();
        assert!(fit.to_ber_model().is_err());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(
            ExponentialFit::fit(&[(1.0, 1.0)]),
            Err(RegressionError::Degenerate)
        );
        assert_eq!(
            ExponentialFit::fit(&[(1.0, 1.0), (1.0, 2.0)]),
            Err(RegressionError::Degenerate)
        );
        assert!(matches!(
            ExponentialFit::fit(&[(0.0, 1.0), (1.0, 0.0)]),
            Err(RegressionError::NonPositiveSample(_))
        ));
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        // Multiplicative noise ±20 % around an exponential.
        let noise = [1.1, 0.85, 1.2, 0.9, 1.05, 0.95, 1.15, 0.8, 1.0, 1.1];
        let points: Vec<(f64, f64)> = (-94..=-85)
            .zip(noise)
            .map(|(x, n)| (x as f64, n * 2.35e-30 * (-0.659 * x as f64).exp()))
            .collect();
        let fit = ExponentialFit::fit(&points).unwrap();
        assert!((fit.slope() + 0.659).abs() < 0.05);
        assert!(fit.r_squared() > 0.99);
    }

    #[test]
    fn display_formats() {
        let fit = ExponentialFit::fit(&[(0.0, 1.0), (1.0, 0.1)]).unwrap();
        let s = fit.to_string();
        assert!(s.contains("exp"), "{s}");
        assert!(s.contains("R²"), "{s}");
    }
}
