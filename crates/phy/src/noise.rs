//! Randomness abstractions and special functions used by the bit-level
//! channel models.
//!
//! The PHY crate does not depend on an RNG implementation; Monte-Carlo
//! entry points are generic over [`UniformSource`]. A small, fast,
//! deterministic [`SplitMix64`] is provided so the crate is usable
//! standalone; `wsn-sim`'s higher-quality generator also implements the
//! trait.

/// A source of uniformly distributed `f64` samples in `[0, 1)`.
pub trait UniformSource {
    /// Returns the next uniform sample in `[0, 1)`.
    fn next_f64(&mut self) -> f64;
}

impl<T: UniformSource + ?Sized> UniformSource for &mut T {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (**self).next_f64()
    }
}

/// Sebastiano Vigna's SplitMix64 generator: tiny, fast, and statistically
/// adequate for physical-layer Monte-Carlo.
///
/// # Examples
///
/// ```
/// use wsn_phy::noise::{SplitMix64, UniformSource};
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_f64(), b.next_f64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl UniformSource for SplitMix64 {
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Draws zero-mean, unit-variance Gaussian samples from a uniform source
/// using the Box–Muller transform, caching the second variate.
#[derive(Debug, Clone)]
pub struct GaussianSource<U> {
    uniform: U,
    cached: Option<f64>,
}

impl<U: UniformSource> GaussianSource<U> {
    /// Wraps a uniform source.
    pub fn new(uniform: U) -> Self {
        GaussianSource {
            uniform,
            cached: None,
        }
    }

    /// Returns the next standard-normal sample.
    pub fn next_gaussian(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller on (0,1] × [0,1) to avoid ln(0).
        let u1 = 1.0 - self.uniform.next_f64();
        let u2 = self.uniform.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Recovers the inner uniform source.
    pub fn into_inner(self) -> U {
        self.uniform
    }
}

/// Complementary error function.
///
/// Near the origin a Chebyshev fit (absolute error `< 1.2 × 10⁻⁷`) is used;
/// in the tail (`|x| ≥ 1.25`) the function is evaluated through the upper
/// incomplete gamma continued fraction `erfc(x) = Q(½, x²)`, which keeps the
/// *relative* error near machine precision — essential for the deep-tail
/// chip-error probabilities of the DSSS receiver model.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let ans = if z < 1.25 {
        erfc_chebyshev(z)
    } else {
        gammq_half(z * z)
    };
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Numerical Recipes' Chebyshev fit, adequate where `erfc` is not tiny.
fn erfc_chebyshev(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = -z * z - 1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87 + t * (-0.822_152_23 + t * 0.170_872_77))))))));
    t * poly.exp()
}

/// Upper regularized incomplete gamma `Q(½, x)` by Lentz's continued
/// fraction (converges rapidly for `x ≳ 1.5`).
fn gammq_half(x: f64) -> f64 {
    const A: f64 = 0.5;
    const LN_GAMMA_HALF: f64 = 0.572_364_942_924_700_1; // ln √π
    let mut b = x + 1.0 - A;
    let mut c = 1e308;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..200 {
        let an = -(i as f64) * (i as f64 - A);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 3e-16 {
            break;
        }
    }
    (-x + A * x.ln() - LN_GAMMA_HALF).exp() * h
}

/// The Gaussian tail probability `Q(x) = P(N(0,1) > x)`.
///
/// # Examples
///
/// ```
/// use wsn_phy::noise::q_function;
///
/// assert!((q_function(0.0) - 0.5).abs() < 1e-7);
/// assert!(q_function(6.0) < 1e-8);
/// ```
#[inline]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut rng = SplitMix64::new(0xDEADBEEF);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_mean_is_half() {
        let mut rng = SplitMix64::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut g = GaussianSource::new(SplitMix64::new(99));
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(0.5) - 0.479_500_1).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_734_981).abs() < 1e-10);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(4) = 1.541725790028002e-8, erfc(5) = 1.537459794428035e-12.
        let rel4 = (erfc(4.0) - 1.541_725_790_028_002e-8) / 1.541_725_790_028_002e-8;
        let rel5 = (erfc(5.0) - 1.537_459_794_428_035e-12) / 1.537_459_794_428_035e-12;
        assert!(rel4.abs() < 1e-10, "rel err at 4: {rel4:e}");
        assert!(rel5.abs() < 1e-10, "rel err at 5: {rel5:e}");
    }

    #[test]
    fn erfc_continuous_at_branch_point() {
        let below = erfc(1.25 - 1e-9);
        let above = erfc(1.25 + 1e-9);
        assert!(
            (below - above).abs() < 1e-6,
            "jump at branch: {below} vs {above}"
        );
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q_function(3.0) - 1.349_898e-3).abs() < 1e-8);
        // Symmetry: Q(-x) = 1 - Q(x).
        assert!((q_function(-2.0) + q_function(2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_tail_fraction_matches_q() {
        let mut g = GaussianSource::new(SplitMix64::new(5));
        let n = 400_000;
        let above_one = (0..n).filter(|_| g.next_gaussian() > 1.0).count();
        let frac = above_one as f64 / n as f64;
        assert!((frac - q_function(1.0)).abs() < 0.005, "fraction {frac}");
    }
}
