//! Property-based tests for the PHY: spreading, frames, CRC, BER models
//! and regression.

use proptest::prelude::*;

use wsn_phy::ber::{BerModel, EmpiricalCc2420Ber, HardDecisionDsssBer, StandardOqpskBer};
use wsn_phy::frame::{crc16_itu_t, Address, MacFrame, PacketLayout};
use wsn_phy::regression::ExponentialFit;
use wsn_phy::spreading::{
    bytes_to_symbols, despread, spread_bytes, symbols_to_bytes, ChipSequence, Symbol,
};
use wsn_units::{DBm, Db};

proptest! {
    /// Spreading then despreading any byte stream is the identity.
    #[test]
    fn spread_despread_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..127)) {
        let chips = spread_bytes(&bytes);
        let symbols: Vec<Symbol> = chips.into_iter().map(despread).collect();
        prop_assert_eq!(symbols_to_bytes(&symbols), bytes);
    }

    /// Nibble order survives bytes→symbols→bytes.
    #[test]
    fn nibble_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(symbols_to_bytes(&bytes_to_symbols(&bytes)), bytes);
    }

    /// Any error pattern of ≤5 chips is corrected for every symbol.
    #[test]
    fn five_chip_errors_corrected(
        sym in 0u8..16,
        positions in proptest::collection::btree_set(0u32..32, 0..=5)
    ) {
        let symbol = Symbol::new(sym).unwrap();
        let mut raw = ChipSequence::for_symbol(symbol).raw();
        for p in positions {
            raw ^= 1 << p;
        }
        prop_assert_eq!(despread(ChipSequence::from_raw(raw)), symbol);
    }

    /// CRC-16 detects every single- and double-bit error.
    #[test]
    fn crc_detects_small_errors(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        flip_a in any::<u16>(),
        flip_b in any::<u16>(),
    ) {
        let base = crc16_itu_t(&data);
        let bits = data.len() * 8;
        let a = (flip_a as usize) % bits;
        let b = (flip_b as usize) % bits;
        let mut corrupted = data.clone();
        corrupted[a / 8] ^= 1 << (a % 8);
        if b != a {
            corrupted[b / 8] ^= 1 << (b % 8);
        }
        prop_assert_ne!(crc16_itu_t(&corrupted), base);
    }

    /// MAC data frames roundtrip for arbitrary payloads and addresses.
    #[test]
    fn frame_roundtrip(
        seq in any::<u8>(),
        pan in any::<u16>(),
        dest in any::<u16>(),
        src in any::<u16>(),
        ack in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let frame = MacFrame::data(
            seq,
            pan,
            Address::Short(dest),
            Address::Short(src),
            payload,
            ack,
        );
        let wire = frame.serialize().unwrap();
        prop_assert_eq!(MacFrame::parse(&wire).unwrap(), frame);
    }

    /// Packet layout arithmetic is consistent for every legal payload.
    #[test]
    fn packet_layout_arithmetic(payload in 0usize..=123) {
        let p = PacketLayout::with_payload(payload).unwrap();
        prop_assert_eq!(p.total_bytes(), payload + 13);
        prop_assert_eq!(p.payload_bits(), payload * 8);
        prop_assert_eq!(p.error_exposed_bits() as usize, (payload + 9) * 8);
        let micros = p.duration().micros();
        prop_assert!((micros - (payload as f64 + 13.0) * 32.0).abs() < 1e-9);
    }

    /// All BER models are monotone non-increasing in received power and
    /// bounded by [0, 1/2].
    #[test]
    fn ber_models_monotone(p0 in -110.0..-60.0f64, delta in 0.0..10.0f64) {
        let weaker = DBm::new(p0);
        let stronger = DBm::new(p0 + delta);
        let models: [&dyn BerModel; 3] = [
            &EmpiricalCc2420Ber::paper(),
            &HardDecisionDsssBer::new(Db::new(21.0)),
            &StandardOqpskBer::new(Db::new(21.0)),
        ];
        for m in models {
            let low = m.bit_error_probability(weaker).value();
            let high = m.bit_error_probability(stronger).value();
            prop_assert!(high <= low + 1e-12);
            prop_assert!((0.0..=0.5).contains(&low));
        }
    }

    /// Packet error ≥ bit error and grows with payload size.
    #[test]
    fn packet_error_dominates_bit_error(
        p_rx in -95.0..-80.0f64,
        small in 1usize..60,
        extra in 1usize..60,
    ) {
        let m = EmpiricalCc2420Ber::paper();
        let power = DBm::new(p_rx);
        let small_layout = PacketLayout::with_payload(small).unwrap();
        let large_layout = PacketLayout::with_payload(small + extra).unwrap();
        let bit = m.bit_error_probability(power).value();
        let pe_small = m.packet_error_probability(power, small_layout).value();
        let pe_large = m.packet_error_probability(power, large_layout).value();
        prop_assert!(pe_small + 1e-15 >= bit);
        prop_assert!(pe_large >= pe_small);
    }

    /// Exponential regression recovers exact parameters from exact data.
    #[test]
    fn regression_recovers_parameters(
        log_c in -40.0..-5.0f64,
        slope in 0.05..2.0f64,
    ) {
        let c = 10f64.powf(log_c);
        let points: Vec<(f64, f64)> = (-94..=-85)
            .map(|x| (x as f64, c * (-slope * x as f64).exp()))
            .collect();
        let fit = ExponentialFit::fit(&points).unwrap();
        prop_assert!((fit.slope() + slope).abs() < 1e-6);
        prop_assert!((fit.coefficient().log10() - log_c).abs() < 1e-6);
        prop_assert!(fit.r_squared() > 0.999_99);
    }
}
