//! Quickstart: predict the average power of one 802.15.4 sensor node.
//!
//! A node wakes for every beacon (BO = 6 ⇒ every 983 ms), sends one
//! 120-byte packet per superframe through slotted CSMA/CA over an 80 dB
//! path at −5 dBm, and sleeps the rest of the time.
//!
//! Run with: `cargo run --example quickstart`

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::{ActivationModel, ModelInputs};
use ieee802154_energy::model::contention::{ContentionModel, IdealContention};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::radio::{RadioModel, TxPowerLevel};
use ieee802154_energy::units::Db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The radio: the paper's measured CC2420 characterization.
    let radio = RadioModel::cc2420();

    // 2. The analytical model with the paper's protocol constants.
    let model = ActivationModel::paper_defaults(radio);

    // 3. The operating point.
    let packet = PacketLayout::with_payload(120)?;
    let inputs = ModelInputs {
        packet,
        beacon_order: BeaconOrder::new(6)?,
        tx_level: TxPowerLevel::Neg5,
        path_loss: Db::new(80.0),
        contention: IdealContention.stats(0.42, packet),
    };

    // 4. Evaluate.
    let out = model.evaluate(&inputs, &EmpiricalCc2420Ber::paper());

    println!("inter-beacon period : {}", out.t_ib);
    println!("average power       : {}", out.average_power);
    println!("failure probability : {}", out.pr_fail);
    println!("delivery delay      : {}", out.delay);
    println!("energy per bit      : {}", out.energy_per_data_bit);
    println!();
    println!("radio residencies per superframe:");
    println!("  idle : {}", out.t_idle);
    println!("  tx   : {}", out.t_tx);
    println!("  rx   : {}", out.t_rx);

    Ok(())
}
