//! Derive the energy-optimal transmit-power switching thresholds (the
//! paper's channel-inversion link adaptation, Figure 7) and apply the
//! resulting policy to a geometric deployment.
//!
//! Run with: `cargo run --release --example link_adaptation`

use ieee802154_energy::channel::{Deployment, LogDistance};
use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::contention::IdealContention;
use ieee802154_energy::model::link_adaptation::LinkAdaptation;
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::phy::noise::SplitMix64;
use ieee802154_energy::radio::RadioModel;
use ieee802154_energy::units::{Db, Meters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        PacketLayout::with_payload(120)?,
        BeaconOrder::new(6)?,
    );
    let ber = EmpiricalCc2420Ber::paper();

    // Compute the optimal level on a path-loss grid and extract thresholds.
    let losses: Vec<Db> = (50..=95).map(|a| Db::new(a as f64)).collect();
    let sweep = study.sweep(&losses, 0.42, &ber, &IdealContention);
    let policy = LinkAdaptation::thresholds(&sweep);

    println!("switching thresholds (path loss → level):");
    for (loss, level) in policy.thresholds() {
        println!("  ≥ {loss} → {level}");
    }

    // Apply to a physical deployment: 100 nodes in a 40 m indoor disc.
    let mut rng = SplitMix64::new(2026);
    let deployment = Deployment::uniform_disc(100, Meters::new(40.0), &mut rng);
    let model = LogDistance::indoor_2450();
    let node_losses = deployment.path_losses(&model);

    let mut counts = std::collections::BTreeMap::new();
    for loss in &node_losses {
        *counts.entry(policy.level_for(*loss)).or_insert(0usize) += 1;
    }
    println!("\nlevel assignment for 100 nodes in a 40 m indoor disc:");
    for (level, count) in counts {
        println!("  {level}: {count} nodes");
    }

    Ok(())
}
