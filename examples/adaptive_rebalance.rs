//! Closed-loop channel assignment in ~60 lines: a ring-stratified
//! deployment saturates its outer channel (high failure, high power);
//! `GreedyRebalance` drains it round by round while the `static` baseline
//! watches it burn. Both traces run the same per-round contention seeds,
//! so every printed delta is the policy's doing — and both are
//! bit-identical for every `--threads` value.
//!
//! Run with: `cargo run --release --example adaptive_rebalance -- [superframes] [--threads N] [--reps N] [--rounds N]`

use ieee802154_energy::sim::policy::{GreedyRebalance, PolicyEngine, StaticAllocation};
use ieee802154_energy::sim::scenario::{ChannelAllocation, DeploymentSpec, Scenario};
use wsn_bench::RunArgs;

fn main() {
    let args = RunArgs::parse(8);
    let runner = args.runner();
    let reps = args.reps_or(2);
    let rounds = args.rounds_or(8) as usize;

    // 4 channels × 16 nodes at BO 3 — a hot channel load (≈0.55), so the
    // outer distance band pays for both its weak links and its queue.
    let scenario = Scenario::new(
        "ring-stratified disc",
        4,
        16,
        DeploymentSpec::Disc {
            radius_m: 60.0,
            exponent: 3.0,
            shadowing_db: 0.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_beacon_order(ieee802154_energy::mac::BeaconOrder::new(3).expect("BO 3 valid"))
    .with_superframes(args.superframes)
    .with_replications(reps);

    let engine = PolicyEngine::new(scenario).with_rounds(rounds).run_all_rounds();
    let static_trace = engine.run(&runner, &mut StaticAllocation);
    let greedy_trace = engine.run(&runner, &mut GreedyRebalance::new(3));

    println!(
        "adaptive rebalance — 4 channels × 16 nodes, {} superframes × {reps} reps × {rounds} rounds ({} threads)\n",
        args.superframes,
        runner.threads()
    );
    println!("round | static worst-fail | greedy worst-fail | moved | greedy ch-loads");
    for (s, g) in static_trace.rounds.iter().zip(&greedy_trace.rounds) {
        let mut counts = [0usize; 4];
        for &c in &g.assignment {
            counts[c] += 1;
        }
        println!(
            "  {:>3} | {:16.1} % | {:16.1} % | {:>5} | {:?}",
            s.round,
            s.worst_failure() * 100.0,
            g.worst_failure() * 100.0,
            g.moved,
            counts
        );
    }

    let static_final = static_trace.final_round().worst_failure();
    let greedy_final = greedy_trace.final_round().worst_failure();
    println!(
        "\nfinal worst-channel failure: static {:.1} % → greedy {:.1} % ({:+.1} pts)",
        static_final * 100.0,
        greedy_final * 100.0,
        (greedy_final - static_final) * 100.0
    );
    match greedy_trace.rounds_to_stabilize() {
        Some(r) => println!("greedy stabilized at round {r}"),
        None => println!("greedy still rebalancing after {rounds} rounds"),
    }
}
