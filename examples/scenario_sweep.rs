//! The scenario layer in one sweep: the same 4-channel network under
//! four configurations — the paper's uniform loss population, a
//! ring-stratified indoor disc, per-channel clusters, and a GTS +
//! downlink variant — each run as parallel replicated simulations with
//! replication-based standard errors.
//!
//! Accepts the figure binaries' flags: `[superframes] [--threads N]
//! [--reps N]`, plus `--save-dir DIR` to write the sweep as saved
//! scenario JSON files (the `wsn_sim::persist` format) instead of
//! running it — ready for `batch_run --dir DIR`.
//!
//! Run with: `cargo run --release --example scenario_sweep -- [superframes] [--threads N] [--reps N] [--save-dir DIR]`

use ieee802154_energy::sim::scenario::{
    ChannelAllocation, DeploymentSpec, Scenario, TrafficSpec,
};
use wsn_bench::{export_scenario_file, RunArgs};
use wsn_sim::SavedScenario;

/// The scenario name as a file stem: lowercase alphanumerics, runs of
/// anything else collapsed to `_`.
fn file_stem(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

fn main() {
    let args = RunArgs::parse(12);
    let reps = args.reps_or(4);
    let scenarios = [
        Scenario::new(
            "uniform 55-95 dB population",
            4,
            50,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        ),
        Scenario::new(
            "indoor disc, ring-stratified",
            4,
            50,
            DeploymentSpec::Disc {
                radius_m: 55.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified),
        Scenario::new(
            "clustered, heterogeneous traffic",
            4,
            50,
            DeploymentSpec::Clustered {
                field_radius_m: 50.0,
                cluster_radius_m: 6.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous)
        .with_traffic(TrafficSpec::per_channel(vec![40, 80, 120, 123])),
        Scenario::new(
            "uniform with GTS and downlink",
            4,
            50,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 90.0,
            },
        )
        .with_traffic(TrafficSpec::uniform(120).with_gts(1).with_downlink(0.2)),
    ];

    // `--save-dir`: write the sweep as saved scenario files and exit.
    if let Some(dir) = &args.save_dir {
        for scenario in scenarios {
            let scenario = scenario
                .with_superframes(args.superframes)
                .with_replications(reps);
            let path = format!("{dir}/{}.json", file_stem(&scenario.name));
            export_scenario_file(&path, &SavedScenario::open_loop(scenario));
        }
        return;
    }

    let runner = args.runner();
    println!(
        "scenario sweep — 4 channels × 50 nodes, {} superframes × {reps} replications ({} threads)\n",
        args.superframes,
        runner.threads()
    );
    for scenario in scenarios {
        let outcome = scenario
            .with_superframes(args.superframes)
            .with_replications(reps)
            .run(&runner);
        let o = &outcome.overall;
        println!("{}", outcome.name);
        println!(
            "  power    : {:.1} ± {:.1} µW",
            o.mean_node_power.microwatts(),
            o.power_standard_error.microwatts()
        );
        println!(
            "  failures : {:.1} ± {:.1} %",
            o.failure_ratio.value() * 100.0,
            o.failure_standard_error * 100.0
        );
        println!("  delay    : {:.2} s", o.mean_delay.secs());
        for (c, s) in outcome.per_channel.iter().enumerate() {
            println!(
                "    ch{c}: {:6.1} µW, fail {:5.1} %",
                s.mean_node_power.microwatts(),
                s.failure_ratio.value() * 100.0
            );
        }
        println!();
    }
}
