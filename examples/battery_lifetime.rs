//! Battery lifetime and energy-scavenging feasibility (extension of the
//! paper's §1 motivation: a 100 µW budget enables self-powered nodes).
//!
//! Run with: `cargo run --release --example battery_lifetime`

use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::case_study::CaseStudy;
use ieee802154_energy::model::contention::MonteCarloContention;
use ieee802154_energy::model::improvements::{combined_radio, evaluate_variant};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::RadioModel;
use ieee802154_energy::units::{Energy, Power};

/// Hours in a coin cell of the given capacity at an average power draw.
fn lifetime_hours(capacity: Energy, draw: Power) -> f64 {
    capacity.joules() / draw.watts() / 3600.0
}

fn main() {
    // CR2032-class coin cell: ~225 mAh × 3 V ≈ 2430 J.
    let coin_cell = Energy::from_joules(2430.0);
    let scavenging_budget = Power::from_microwatts(100.0);

    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let ber = EmpiricalCc2420Ber::paper();
    let mc = MonteCarloContention::figure6().with_superframes(30);

    let baseline = study.run(&ber, &mc);
    println!("case-study node, stock CC2420:");
    println!("  average power : {}", baseline.average_power);
    println!(
        "  coin-cell life: {:.0} days",
        lifetime_hours(coin_cell, baseline.average_power) / 24.0
    );
    println!(
        "  vs 100 µW scavenging budget: {:.1}× over",
        baseline.average_power.watts() / scavenging_budget.watts()
    );

    let improved = evaluate_variant(&study, combined_radio(0.5, 0.25), &ber, &mc);
    println!("\nwith the paper's hardware improvements (fast transitions + scalable RX):");
    println!("  average power : {}", improved.variant);
    println!(
        "  coin-cell life: {:.0} days",
        lifetime_hours(coin_cell, improved.variant) / 24.0
    );
    println!(
        "  vs 100 µW scavenging budget: {:.2}× over",
        improved.variant.watts() / scavenging_budget.watts()
    );
    println!(
        "\nreduction: {:.1} % — the gap to self-powered operation the paper's \
         conclusions call for",
        improved.reduction() * 100.0
    );
}
