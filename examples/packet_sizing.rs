//! Explore the buffering tradeoff: how much data should a node accumulate
//! before transmitting? (The paper's Figure 8 analysis.)
//!
//! Run with: `cargo run --release --example packet_sizing`

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::contention::IdealContention;
use ieee802154_energy::model::packet_sizing::PacketSizing;
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::{RadioModel, TxPowerLevel};
use ieee802154_energy::units::Db;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = PacketSizing::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        BeaconOrder::new(6)?,
        TxPowerLevel::Neg5,
        Db::new(75.0),
    );
    let ber = EmpiricalCc2420Ber::paper();

    let payloads: Vec<usize> = (1..=12).map(|i| i * 10).chain([123]).collect();
    let points = study.sweep(&payloads, 0.42, &ber, &IdealContention);

    println!("payload  energy/bit   (sensing 1 B / 8 ms ⇒ send every …)");
    for p in &points {
        let cadence_ms = p.payload_bytes as f64 * 8.0;
        println!(
            "{:>5} B  {:>10}   {:>7.0} ms",
            p.payload_bytes,
            p.energy_per_bit.to_string(),
            cadence_ms
        );
    }

    let best = PacketSizing::optimal_payload(&points);
    println!(
        "\noptimal payload: {best} bytes — buffering to the maximum packet \
         size minimizes energy per bit, at the price of {:.2} s of latency",
        best as f64 * 8.0 / 1000.0
    );

    Ok(())
}
