//! Drive the discrete-event network simulator directly: a full channel of
//! 100 nodes on a realistic indoor deployment with log-normal shadowing,
//! link-adapted transmit power, and per-phase energy accounting.
//!
//! Run with: `cargo run --release --example network_simulation`

use ieee802154_energy::channel::{
    shadowed_population, Deployment, LogDistance, LogNormalShadowing,
};
use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::contention::IdealContention;
use ieee802154_energy::model::link_adaptation::LinkAdaptation;
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::phy::noise::SplitMix64;
use ieee802154_energy::radio::RadioModel;
use ieee802154_energy::sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use ieee802154_energy::sim::ChannelSimConfig;
use ieee802154_energy::units::{DBm, Db, Meters, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Geometry: 100 nodes in a 35 m indoor disc, exponent-3 path loss with
    // 4 dB shadowing.
    let mut rng = SplitMix64::new(0xD15C);
    let deployment = Deployment::uniform_disc(100, Meters::new(35.0), &mut rng);
    let shadowed = LogNormalShadowing::new(LogDistance::indoor_2450(), Db::new(4.0), 100, &mut rng);
    let losses = shadowed_population(&shadowed, &deployment.ranges());

    // Transmit power from the energy-optimal link adaptation policy.
    let packet = PacketLayout::with_payload(120)?;
    let adaptation = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        packet,
        BeaconOrder::new(6)?,
    );
    let ber = EmpiricalCc2420Ber::paper();
    let levels = losses
        .iter()
        .map(|&a| adaptation.best_level(a, 0.43, &ber, &IdealContention).level)
        .collect();

    let mut channel = ChannelSimConfig::figure6(120, 0.43, 42);
    channel.superframes = 40;
    let sim = NetworkSimulator::new(NetworkConfig {
        channel,
        radio: RadioModel::cc2420(),
        path_losses: losses.clone().into(),
        tx_policy: TxPowerPolicy::PerNode(levels),
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    });
    let report = sim.run(&ber);

    println!("indoor channel, 100 nodes, 40 superframes:");
    println!("  mean node power : {}", report.mean_node_power);
    println!(
        "  failure ratio   : {:.1} %",
        report.failure_ratio.value() * 100.0
    );
    println!("  mean delay      : {}", report.mean_delay);
    println!("  mean attempts   : {:.2}", report.mean_attempts);
    println!("  energy per bit  : {:.0} nJ", report.energy_per_bit_nj);

    println!("\nper-phase energy:");
    for (phase, frac) in report.ledger.phase_energy_fractions() {
        if frac > 0.0005 {
            println!("  {:<11}: {:5.1} %", phase.to_string(), frac * 100.0);
        }
    }

    // The five hungriest nodes are the far/shadowed ones.
    let mut by_power: Vec<(usize, f64)> = report
        .node_powers
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p.microwatts()))
        .collect();
    by_power.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nhungriest nodes (path loss → power):");
    for (i, uw) in by_power.iter().take(5) {
        println!("  node {i:>3}: {} → {uw:.0} µW", losses[*i]);
    }

    Ok(())
}
