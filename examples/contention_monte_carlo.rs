//! Characterize the slotted CSMA/CA contention procedure by Monte-Carlo
//! simulation (the paper's Figure 6 methodology) for one packet size.
//!
//! Run with: `cargo run --release --example contention_monte_carlo`

use ieee802154_energy::sim::{simulate_contention, ChannelSimConfig};

fn main() {
    println!("100 nodes/channel, 50-byte payloads, standard CSMA/CA\n");
    println!(
        "{:>5} {:>12} {:>8} {:>8} {:>8}",
        "load", "T_cont", "N_CCA", "Pr_col", "Pr_cf"
    );
    for i in 1..=9 {
        let load = i as f64 * 0.1;
        let mut cfg = ChannelSimConfig::figure6(50, load, 0xC0FFEE);
        cfg.superframes = 30;
        let stats = simulate_contention(&cfg);
        println!(
            "{:>5.2} {:>12} {:>8.2} {:>8.4} {:>8.4}",
            load,
            stats.mean_contention.to_string(),
            stats.mean_ccas,
            stats.pr_collision.value(),
            stats.pr_access_failure.value()
        );
    }
    println!(
        "\nAll four statistics degrade with load — the contention overhead \
         the paper's energy model charges per transmission attempt."
    );
}
