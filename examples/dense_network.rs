//! The paper's dense-network case study, end to end.
//!
//! 1600 nodes uniformly deployed around a base station share 16 channels
//! (100 nodes each). Every node senses 1 byte per 8 ms, buffers until 120
//! bytes, and uplinks once per 983 ms superframe with link-adapted transmit
//! power. The paper reports 211 µW / 1.45 s / 16 % for this scenario.
//!
//! Run with: `cargo run --release --example dense_network`

use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::case_study::CaseStudy;
use ieee802154_energy::model::contention::MonteCarloContention;
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::{PhaseTag, RadioModel, StateKind};

fn main() {
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    let contention = MonteCarloContention::figure6().with_superframes(40);
    let report = study.run(&EmpiricalCc2420Ber::paper(), &contention);

    println!("dense microsensor network — 1600 nodes, 16 channels");
    println!("channel load          : {:.1} %", report.load * 100.0);
    println!("average node power    : {}", report.average_power);
    println!("mean delivery delay   : {}", report.mean_delay);
    println!(
        "transmission failures : {:.1} %",
        report.mean_failure.value() * 100.0
    );

    println!("\nwhere the energy goes:");
    for phase in [
        PhaseTag::Beacon,
        PhaseTag::Contention,
        PhaseTag::Transmit,
        PhaseTag::AckWait,
    ] {
        println!(
            "  {:<11}: {:4.1} %",
            phase.to_string(),
            report.phase_fraction(phase) * 100.0
        );
    }

    println!("\nwhere the time goes:");
    for state in StateKind::ALL {
        println!(
            "  {:<11}: {:6.2} %",
            state.to_string(),
            report.state_fraction(state) * 100.0
        );
    }

    println!("\ntransmit-power assignment across the population:");
    for (level, share) in report.level_shares {
        if share > 0.0 {
            println!(
                "  {:<11}: {:4.1} % of nodes",
                level.to_string(),
                share * 100.0
            );
        }
    }
}
