//! Umbrella crate re-exporting the full IEEE 802.15.4 energy-modeling stack.
//!
//! This crate exists so that examples and integration tests can address the
//! whole workspace through one dependency. Each sub-crate is re-exported
//! under its short name.

pub use wsn_channel as channel;
pub use wsn_core as model;
pub use wsn_mac as mac;
pub use wsn_phy as phy;
pub use wsn_radio as radio;
pub use wsn_sim as sim;
pub use wsn_units as units;
