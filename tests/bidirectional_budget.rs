//! Integration test: compose the uplink model with the downlink and
//! coordinator extensions into a full bidirectional energy budget.

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::{ActivationModel, ModelInputs};
use ieee802154_energy::model::contention::{ContentionModel, IdealContention};
use ieee802154_energy::model::coordinator::{coordinator_power, CoordinatorInputs};
use ieee802154_energy::model::downlink::{downlink_average_power, downlink_cost};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::radio::{RadioModel, TxPowerLevel};
use ieee802154_energy::units::{Db, Seconds};

#[test]
fn node_budget_with_occasional_downlink() {
    let radio = RadioModel::cc2420();
    let model = ActivationModel::paper_defaults(radio.clone());
    let packet = PacketLayout::with_payload(120).unwrap();
    let bo = BeaconOrder::new(6).unwrap();
    let stats = IdealContention.stats(0.42, packet);

    let uplink = model.evaluate(
        &ModelInputs {
            packet,
            beacon_order: bo,
            tx_level: TxPowerLevel::Neg5,
            path_loss: Db::new(75.0),
            contention: stats,
        },
        &EmpiricalCc2420Ber::paper(),
    );

    // One downlink configuration frame per 100 superframes, with a prompt
    // coordinator.
    let dl = downlink_cost(
        &radio,
        PacketLayout::with_payload(20).unwrap(),
        &stats,
        TxPowerLevel::Neg5,
        Some(Seconds::from_micros(192.0)),
    );
    let dl_power = downlink_average_power(&dl, 0.01, bo.beacon_interval());

    let total = uplink.average_power + dl_power;
    // The occasional downlink must be a small surcharge, not a doubling.
    assert!(
        dl_power.watts() < uplink.average_power.watts() * 0.05,
        "1 % downlink rate costs {} on top of {}",
        dl_power,
        uplink.average_power
    );
    assert!(total.microwatts() < 300.0);
}

#[test]
fn coordinator_dwarfs_node_budget() {
    let radio = RadioModel::cc2420();
    let report = coordinator_power(
        &radio,
        &CoordinatorInputs {
            beacon_order: BeaconOrder::new(6).unwrap(),
            packet: PacketLayout::with_payload(120).unwrap(),
            nodes: 100,
            mean_attempts_per_node: 1.1,
            acked_fraction: 0.88,
            tx_level: TxPowerLevel::Zero,
        },
    );
    // The star topology concentrates the cost: the coordinator burns
    // ~35 mW while nodes run at ~200 µW — two orders of magnitude apart,
    // which is why the paper assumes a mains-powered base station.
    assert!(report.average_power.milliwatts() > 20.0);
    assert!(report.rx_duty > 0.9);
    let node_uw = 211.0;
    assert!(report.average_power.microwatts() / node_uw > 100.0);
}
