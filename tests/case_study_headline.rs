//! Integration test: the paper's §5 headline numbers.
//!
//! The reproduction criterion is *shape*, not exact equality: our
//! contention simulator is not the authors' and the radio is a model, so
//! each scalar is asserted inside a generous band centered on the paper's
//! value, and every qualitative claim of §5 is checked exactly.

use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::case_study::CaseStudy;
use ieee802154_energy::model::contention::MonteCarloContention;
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::{PhaseTag, RadioModel, StateKind};

fn run() -> ieee802154_energy::model::case_study::CaseStudyReport {
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()))
        .with_grid_points(41);
    let contention = MonteCarloContention::figure6().with_superframes(30);
    study.run(&EmpiricalCc2420Ber::paper(), &contention)
}

#[test]
fn load_is_the_papers_42_percent() {
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
    assert!(
        (study.load() - 0.42).abs() < 0.02,
        "λ = {:.3}, paper says 42 %",
        study.load()
    );
}

#[test]
fn average_power_near_211_uw() {
    let report = run();
    let uw = report.average_power.microwatts();
    assert!(
        (150.0..280.0).contains(&uw),
        "average power {uw:.1} µW outside the 211 µW band"
    );
}

#[test]
fn delay_near_1_45_s() {
    let report = run();
    let s = report.mean_delay.secs();
    assert!(
        (1.0..2.2).contains(&s),
        "mean delay {s:.2} s outside the 1.45 s band"
    );
}

#[test]
fn failure_near_16_percent() {
    let report = run();
    let f = report.mean_failure.value();
    assert!(
        (0.06..0.30).contains(&f),
        "failure probability {f:.3} outside the 16 % band"
    );
}

#[test]
fn transmission_uses_less_than_two_thirds_of_energy() {
    // Paper: "the effective transmission uses less than 50 % of the total
    // energy". Our accounting attributes slightly more to TX; the claim we
    // hold is that overheads consume a large minority share.
    let report = run();
    let tx = report.phase_fraction(PhaseTag::Transmit);
    assert!((0.30..0.67).contains(&tx), "transmit fraction {tx:.3}");
    let overhead = report.phase_fraction(PhaseTag::Beacon)
        + report.phase_fraction(PhaseTag::Contention)
        + report.phase_fraction(PhaseTag::AckWait);
    assert!(
        overhead > 0.33,
        "protocol overhead should be a large minority: {overhead:.3}"
    );
}

#[test]
fn figure9_phase_ordering_holds() {
    // Transmit > contention ≥ ack-ish; beacon and contention both
    // substantial (paper: 20 % and 25 %).
    let report = run();
    let beacon = report.phase_fraction(PhaseTag::Beacon);
    let cont = report.phase_fraction(PhaseTag::Contention);
    let tx = report.phase_fraction(PhaseTag::Transmit);
    let ack = report.phase_fraction(PhaseTag::AckWait);
    assert!(
        tx > cont && tx > beacon && tx > ack,
        "transmit must dominate"
    );
    assert!(beacon > 0.08, "beacon share {beacon:.3} too small");
    assert!(cont > 0.08, "contention share {cont:.3} too small");
    assert!(ack > 0.03, "ack share {ack:.3} too small");
}

#[test]
fn figure9_time_breakdown_matches() {
    // Paper: shutdown 98.77 %, idle 0.47 %, TX 0.48 %, RX 0.28 %.
    let report = run();
    let shutdown = report.state_fraction(StateKind::Shutdown);
    let idle = report.state_fraction(StateKind::Idle);
    let tx = report.state_fraction(StateKind::Tx);
    let rx = report.state_fraction(StateKind::Rx);
    assert!(shutdown > 0.975, "shutdown {shutdown:.4}");
    assert!((0.002..0.020).contains(&idle), "idle {idle:.4}");
    assert!((0.003..0.008).contains(&tx), "tx {tx:.4}");
    assert!((0.0015..0.006).contains(&rx), "rx {rx:.4}");
    let sum = shutdown + idle + tx + rx;
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn population_tail_dominates_failures() {
    // Nodes beyond ~88 dB path loss drive the link-quality failures — the
    // paper's "efficient up to 88 dB" boundary. Channel access failures
    // form a load-dependent floor common to the whole population, so the
    // contrast is sharpest on the retry-exhaustion component.
    let report = run();
    let (good, bad): (Vec<_>, Vec<_>) = report.points.iter().partition(|p| p.path_loss.db() < 88.0);
    let mean = |v: &[&ieee802154_energy::model::case_study::CaseStudyPoint]| {
        v.iter().map(|p| p.output.pr_exhausted.value()).sum::<f64>() / v.len() as f64
    };
    let good_exhausted = mean(&good);
    let bad_exhausted = mean(&bad);
    assert!(
        bad_exhausted > 10.0 * good_exhausted.max(1e-6),
        "tail exhaustion {bad_exhausted:.4} should dwarf body exhaustion {good_exhausted:.4}"
    );
}
