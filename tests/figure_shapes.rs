//! Integration tests asserting the qualitative *shapes* of every figure in
//! the paper's evaluation — the reproduction criteria of DESIGN.md §4.

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::ActivationModel;
use ieee802154_energy::model::contention::{ContentionModel, MonteCarloContention};
use ieee802154_energy::model::link_adaptation::LinkAdaptation;
use ieee802154_energy::model::packet_sizing::PacketSizing;
use ieee802154_energy::phy::ber::{BerModel, EmpiricalCc2420Ber};
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::radio::{RadioModel, TxPowerLevel};
use ieee802154_energy::units::{DBm, Db};

fn mc() -> MonteCarloContention {
    MonteCarloContention::figure6().with_superframes(16)
}

// --- Figure 4 ---

#[test]
fn fig4_ber_decays_exponentially_with_power() {
    let ber = EmpiricalCc2420Ber::paper();
    // On the paper's axis range the curve spans roughly 1e-6..1e-2 and each
    // +1 dB multiplies the BER by exp(-0.659) ≈ 0.517.
    let mut prev = ber.bit_error_probability(DBm::new(-94.0)).value();
    for p in -93..=-85 {
        let cur = ber.bit_error_probability(DBm::new(p as f64)).value();
        let ratio = cur / prev;
        assert!(
            (0.51..0.53).contains(&ratio),
            "decay per dB at {p} dBm was {ratio:.4}"
        );
        prev = cur;
    }
}

// --- Figure 6 ---

#[test]
fn fig6_all_metrics_degrade_with_load() {
    let packet = PacketLayout::with_payload(50).unwrap();
    let source = mc();
    let lo = source.stats(0.15, packet);
    let hi = source.stats(0.75, packet);
    assert!(hi.mean_contention > lo.mean_contention);
    assert!(hi.mean_ccas > lo.mean_ccas);
    assert!(hi.pr_collision.value() > lo.pr_collision.value());
    assert!(hi.pr_access_failure.value() > lo.pr_access_failure.value());
}

#[test]
fn fig6_small_packets_collide_more_at_equal_load() {
    // At equal airtime load, small packets mean more packets in flight and
    // more simultaneous contention endings.
    let source = mc();
    let small = source.stats(0.4, PacketLayout::with_payload(10).unwrap());
    let large = source.stats(0.4, PacketLayout::with_payload(100).unwrap());
    assert!(
        small.pr_collision.value() > large.pr_collision.value(),
        "10 B {:.3} vs 100 B {:.3}",
        small.pr_collision.value(),
        large.pr_collision.value()
    );
}

// --- Figure 7 ---

#[test]
fn fig7_energy_rises_with_loss_and_explodes_past_88db() {
    let study = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        PacketLayout::with_payload(120).unwrap(),
        BeaconOrder::new(6).unwrap(),
    );
    let ber = EmpiricalCc2420Ber::paper();
    let source = mc();
    let e55 = study.best_level(Db::new(55.0), 0.42, &ber, &source);
    let e88 = study.best_level(Db::new(88.0), 0.42, &ber, &source);
    let e95 = study.best_level(Db::new(95.0), 0.42, &ber, &source);
    // Paper: 135 nJ/bit → 220 nJ/bit over 55..88 dB (≈ ×1.6), then the
    // link leaves the efficient region entirely.
    let ratio_88 = e88.energy_per_bit.joules() / e55.energy_per_bit.joules();
    assert!(
        (1.2..2.5).contains(&ratio_88),
        "55→88 dB energy ratio {ratio_88:.2}"
    );
    assert!(
        e95.energy_per_bit.joules() > 5.0 * e88.energy_per_bit.joules(),
        "past the efficient region energy must explode"
    );
    // Absolute band: same order of magnitude as the paper's 135–220 nJ/bit.
    let nj55 = e55.energy_per_bit.nanojoules();
    assert!((80.0..400.0).contains(&nj55), "E/bit(55 dB) = {nj55:.0} nJ");
}

#[test]
fn fig7_thresholds_insensitive_to_load() {
    let study = LinkAdaptation::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        PacketLayout::with_payload(120).unwrap(),
        BeaconOrder::new(6).unwrap(),
    );
    let ber = EmpiricalCc2420Ber::paper();
    let source = mc();
    let losses: Vec<Db> = (52..=94).map(|a| Db::new(a as f64)).collect();
    let lo = LinkAdaptation::thresholds(&study.sweep(&losses, 0.15, &ber, &source));
    let hi = LinkAdaptation::thresholds(&study.sweep(&losses, 0.70, &ber, &source));
    // Compare the threshold for each level present in both policies.
    for (a, level) in lo.thresholds() {
        if let Some((b, _)) = hi.thresholds().iter().find(|(_, l)| l == level) {
            assert!(
                (a.db() - b.db()).abs() <= 2.0,
                "threshold for {level} moved from {a} to {b}"
            );
        }
    }
}

// --- Figure 8 ---

#[test]
fn fig8_energy_per_bit_monotone_down_to_max_payload() {
    let study = PacketSizing::new(
        ActivationModel::paper_defaults(RadioModel::cc2420()),
        BeaconOrder::new(6).unwrap(),
        TxPowerLevel::Neg5,
        Db::new(75.0),
    );
    let ber = EmpiricalCc2420Ber::paper();
    let source = mc();
    let payloads: Vec<usize> = vec![10, 30, 60, 90, 120, 123];
    for load in [0.1, 0.42] {
        let points = study.sweep(&payloads, load, &ber, &source);
        for pair in points.windows(2) {
            assert!(
                pair[1].energy_per_bit < pair[0].energy_per_bit,
                "λ={load}: energy rose from {} B to {} B",
                pair[0].payload_bytes,
                pair[1].payload_bytes
            );
        }
        assert_eq!(PacketSizing::optimal_payload(&points), 123);
    }
}

// --- Improvement perspectives ---

#[test]
fn improvements_land_in_the_papers_bands() {
    use ieee802154_energy::model::case_study::CaseStudy;
    use ieee802154_energy::model::improvements::*;
    let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()))
        .with_grid_points(15);
    let ber = EmpiricalCc2420Ber::paper();
    let source = mc();

    let fast = evaluate_variant(&study, faster_transitions_radio(0.5), &ber, &source);
    assert!(
        (0.04..0.20).contains(&fast.reduction()),
        "transition halving: {:.1} % (paper: 12 %)",
        fast.reduction() * 100.0
    );

    let scalable = evaluate_variant(&study, scalable_receiver_radio(0.5), &ber, &source);
    assert!(
        (0.05..0.25).contains(&scalable.reduction()),
        "scalable receiver: {:.1} % (paper: 15 %)",
        scalable.reduction() * 100.0
    );

    let both = evaluate_variant(&study, combined_radio(0.5, 0.5), &ber, &source);
    assert!(both.reduction() > fast.reduction().max(scalable.reduction()));
}
