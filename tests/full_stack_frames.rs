//! Full-stack frame test: MAC beacon payload → MAC frame → PPDU → chip
//! spreading → AWGN-free despreading → parse — across four crates.

use ieee802154_energy::mac::beacon::BeaconPayload;
use ieee802154_energy::mac::SuperframeConfig;
use ieee802154_energy::phy::frame::{Address, MacFrame, Ppdu};
use ieee802154_energy::phy::spreading::{despread, spread_bytes, symbols_to_bytes};

/// Encode → spread → despread → decode a beacon end-to-end.
#[test]
fn beacon_survives_the_chip_domain() {
    let config = SuperframeConfig::fully_active(6).expect("valid BO");
    let mut payload = BeaconPayload::for_config(config);
    payload.pending_short = vec![0x0042, 0x0099];

    let frame = MacFrame::beacon(17, 0x1234, Address::Short(0x0000), payload.serialize());
    let mpdu = frame.serialize().expect("fits in a PPDU");
    let ppdu = Ppdu::new(mpdu).expect("within 127 bytes");
    let air_bytes = ppdu.serialize();

    // PHY: every byte becomes two 32-chip sequences.
    let chips = spread_bytes(&air_bytes);
    assert_eq!(chips.len(), air_bytes.len() * 2);

    // Receiver: hard-decision despreading recovers the byte stream.
    let symbols: Vec<_> = chips.into_iter().map(despread).collect();
    let received = symbols_to_bytes(&symbols);
    assert_eq!(received, air_bytes);

    // MAC parse on the receiver side.
    let psdu = &received[6..]; // preamble 4 + SFD 1 + PHR 1
    let parsed = MacFrame::parse(psdu).expect("valid frame");
    assert_eq!(parsed, frame);
    let parsed_payload = BeaconPayload::parse(&parsed.payload).expect("valid beacon");
    assert_eq!(parsed_payload, payload);
    assert!(parsed_payload.has_pending(0x0042));
}

/// Chip-level corruption within the correction radius is transparent; the
/// FCS catches heavier corruption.
#[test]
fn corruption_is_corrected_or_detected() {
    let frame = MacFrame::data(
        5,
        0xBEEF,
        Address::Short(0x0001),
        Address::Short(0x0002),
        (0u8..64).collect(),
        true,
    );
    let mpdu = frame.serialize().expect("fits");
    let chips = spread_bytes(&mpdu);

    // Flip 4 chips in every sequence: despreading must correct them all
    // (minimum pairwise distance is ≥ 12).
    let corrupted: Vec<_> = chips
        .iter()
        .map(|c| {
            ieee802154_energy::phy::spreading::ChipSequence::from_raw(
                c.raw() ^ 0b1001_0000_0010_0001,
            )
        })
        .collect();
    let symbols: Vec<_> = corrupted.into_iter().map(despread).collect();
    let received = symbols_to_bytes(&symbols);
    assert_eq!(received, mpdu, "4 chip errors per symbol must be corrected");

    // Byte-level corruption after despreading: FCS must reject.
    let mut broken = mpdu.clone();
    broken[10] ^= 0xFF;
    assert!(MacFrame::parse(&broken).is_err());
}
