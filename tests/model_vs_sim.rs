//! Cross-validation: the analytical activation model against the
//! discrete-event network simulator, on a homogeneous population (one path
//! loss, one TX level), feeding the model the very contention statistics
//! the simulator produced.
//!
//! The two implementations share no energy-accounting code — the model
//! computes closed-form expectations, the simulator bills a per-node ledger
//! from the event trace — so agreement here validates both.

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::{ActivationModel, ModelInputs, ModelRefinements};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::RadioModel;
use ieee802154_energy::radio::TxPowerLevel;
use ieee802154_energy::sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use ieee802154_energy::sim::ChannelSimConfig;
use ieee802154_energy::units::{DBm, Db, Seconds};

struct Comparison {
    model_uw: f64,
    sim_uw: f64,
    model_fail: f64,
    sim_fail: f64,
}

fn compare(loss_db: f64, level: TxPowerLevel, load: f64, seed: u64) -> Comparison {
    let ber = EmpiricalCc2420Ber::paper();
    let nodes = 100;

    let mut channel = ChannelSimConfig::figure6(120, load, seed);
    channel.nodes = nodes;
    channel.superframes = 30;

    let sim = NetworkSimulator::new(NetworkConfig {
        channel: channel.clone(),
        radio: RadioModel::cc2420(),
        path_losses: vec![Db::new(loss_db); nodes].into(),
        tx_policy: TxPowerPolicy::Fixed(level),
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    });
    let net = sim.run(&ber);

    // The model consumes the contention statistics measured by this very
    // simulation run, with the physical refinements the simulator bills.
    let stats = net.trace.contention_stats();
    let bo = BeaconOrder::smallest_covering(channel.beacon_interval()).expect("coverable interval");
    // Scale: the sim's T_ib is not exactly a power of two; evaluate the
    // model at the sim's interval by scaling the BO-based output.
    let model = ActivationModel::paper_defaults(RadioModel::cc2420())
        .with_refinements(ModelRefinements::physical());
    let out = model.evaluate(
        &ModelInputs {
            packet: channel.packet,
            beacon_order: bo,
            tx_level: level,
            path_loss: Db::new(loss_db),
            contention: stats,
        },
        &ber,
    );
    // Convert the model's per-superframe energy to the sim's actual T_ib.
    let energy_per_sf = out.average_power.watts() * out.t_ib.secs();
    let model_uw = energy_per_sf / channel.beacon_interval().secs() * 1e6;

    Comparison {
        model_uw,
        sim_uw: net.mean_node_power.microwatts(),
        model_fail: out.pr_fail.value(),
        sim_fail: net.failure_ratio.value(),
    }
}

#[test]
fn power_agrees_on_clean_link() {
    let c = compare(70.0, TxPowerLevel::Neg5, 0.42, 1);
    let ratio = c.model_uw / c.sim_uw;
    assert!(
        (0.8..1.25).contains(&ratio),
        "model {:.1} µW vs sim {:.1} µW (ratio {ratio:.3})",
        c.model_uw,
        c.sim_uw
    );
}

#[test]
fn power_agrees_on_weak_link() {
    // −15 dBm over 80 dB: received −95 dBm, heavy retransmission regime.
    let c = compare(80.0, TxPowerLevel::Neg15, 0.42, 2);
    let ratio = c.model_uw / c.sim_uw;
    assert!(
        (0.75..1.3).contains(&ratio),
        "model {:.1} µW vs sim {:.1} µW (ratio {ratio:.3})",
        c.model_uw,
        c.sim_uw
    );
}

#[test]
fn failure_probability_agrees() {
    let clean = compare(70.0, TxPowerLevel::Neg5, 0.42, 3);
    assert!(
        (clean.model_fail - clean.sim_fail).abs() < 0.08,
        "clean link: model {:.3} vs sim {:.3}",
        clean.model_fail,
        clean.sim_fail
    );

    let weak = compare(80.0, TxPowerLevel::Neg15, 0.42, 4);
    assert!(
        weak.sim_fail > clean.sim_fail,
        "weak link must fail more in the simulator"
    );
    assert!(
        (weak.model_fail - weak.sim_fail).abs() < 0.15,
        "weak link: model {:.3} vs sim {:.3}",
        weak.model_fail,
        weak.sim_fail
    );
}

#[test]
fn load_scaling_matches() {
    // Both worlds should report more power at higher load (more contention
    // and retries), with consistent ordering.
    let lo_sim = compare(75.0, TxPowerLevel::Neg5, 0.15, 5);
    let hi_sim = compare(75.0, TxPowerLevel::Neg5, 0.75, 5);
    assert!(
        hi_sim.sim_uw > lo_sim.sim_uw,
        "sim power should rise with load: {:.1} vs {:.1}",
        lo_sim.sim_uw,
        hi_sim.sim_uw
    );
    assert!(
        hi_sim.model_uw > lo_sim.model_uw,
        "model power should rise with load: {:.1} vs {:.1}",
        lo_sim.model_uw,
        hi_sim.model_uw
    );
}
