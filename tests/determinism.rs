//! End-to-end determinism: every stochastic component is seedable and
//! reproducible, so recorded experiments can be regenerated bit-for-bit.

use ieee802154_energy::phy::baseband::{simulate_ber, BasebandConfig};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::radio::{RadioModel, TxPowerLevel};
use ieee802154_energy::sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use ieee802154_energy::sim::{simulate_contention, ChannelSimConfig, Xoshiro256StarStar};
use ieee802154_energy::units::{DBm, Db, Seconds};

#[test]
fn contention_sim_is_bit_reproducible() {
    let mut cfg = ChannelSimConfig::figure6(100, 0.42, 0xDEAD);
    cfg.superframes = 10;
    let a = simulate_contention(&cfg);
    let b = simulate_contention(&cfg);
    assert_eq!(a, b);
}

#[test]
fn network_sim_is_bit_reproducible() {
    let run = || {
        let mut channel = ChannelSimConfig::figure6(120, 0.42, 0xBEEF);
        channel.nodes = 25;
        channel.superframes = 6;
        let nodes = channel.nodes;
        NetworkSimulator::new(NetworkConfig {
            channel,
            radio: RadioModel::cc2420(),
            path_losses: vec![Db::new(75.0); nodes].into(),
            tx_policy: TxPowerPolicy::Fixed(TxPowerLevel::Neg5),
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
            corrupt_probs: None,
        })
        .run(&EmpiricalCc2420Ber::paper())
    };
    let a = run();
    let b = run();
    assert_eq!(a.mean_node_power, b.mean_node_power);
    assert_eq!(a.failure_ratio, b.failure_ratio);
    assert_eq!(a.node_powers, b.node_powers);
    assert_eq!(a.ledger, b.ledger);
}

#[test]
fn baseband_mc_is_bit_reproducible() {
    let cfg = BasebandConfig::new(Db::new(21.0));
    let run = || {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xF00D);
        simulate_ber(cfg, DBm::new(-91.0), 100_000, 200, &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_traces() {
    let mut a_cfg = ChannelSimConfig::figure6(50, 0.4, 1);
    a_cfg.superframes = 6;
    let mut b_cfg = a_cfg.clone();
    b_cfg.seed = 2;
    let a = simulate_contention(&a_cfg);
    let b = simulate_contention(&b_cfg);
    assert_ne!(
        (a.mean_contention, a.procedures),
        (b.mean_contention, b.procedures),
        "distinct seeds should explore distinct sample paths"
    );
}
