//! Conservation invariants: the double-entry energy ledger must balance,
//! and the analytical model's phase decomposition must reproduce its own
//! eq. (11) state-residency form.

use ieee802154_energy::mac::BeaconOrder;
use ieee802154_energy::model::activation::{ActivationModel, ModelInputs};
use ieee802154_energy::model::contention::{
    ContentionModel, IdealContention, MonteCarloContention,
};
use ieee802154_energy::phy::ber::EmpiricalCc2420Ber;
use ieee802154_energy::phy::frame::PacketLayout;
use ieee802154_energy::radio::{PhaseTag, RadioModel, RadioState, StateKind, TxPowerLevel};
use ieee802154_energy::sim::network::{NetworkConfig, NetworkSimulator, TxPowerPolicy};
use ieee802154_energy::sim::ChannelSimConfig;
use ieee802154_energy::units::{DBm, Db, Seconds};

#[test]
fn simulator_ledger_balances_between_views() {
    let mut channel = ChannelSimConfig::figure6(120, 0.42, 77);
    channel.nodes = 30;
    channel.superframes = 10;
    let nodes = channel.nodes;
    let sim = NetworkSimulator::new(NetworkConfig {
        channel,
        radio: RadioModel::cc2420(),
        path_losses: vec![Db::new(75.0); nodes].into(),
        tx_policy: TxPowerPolicy::Fixed(TxPowerLevel::Neg5),
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    });
    let report = sim.run(&EmpiricalCc2420Ber::paper());

    let by_state: f64 = StateKind::ALL
        .iter()
        .map(|&k| report.ledger.energy_in(k).joules())
        .sum();
    let by_phase: f64 = PhaseTag::ALL
        .iter()
        .map(|&p| report.ledger.energy_in_phase(p).joules())
        .sum();
    let total = report.ledger.total_energy().joules();
    assert!((by_state - total).abs() < total * 1e-12);
    assert!((by_phase - total).abs() < total * 1e-12);

    let t_state: f64 = StateKind::ALL
        .iter()
        .map(|&k| report.ledger.time_in(k).secs())
        .sum();
    let t_phase: f64 = PhaseTag::ALL
        .iter()
        .map(|&p| report.ledger.time_in_phase(p).secs())
        .sum();
    assert!((t_state - t_phase).abs() < t_state * 1e-12);
}

#[test]
fn model_phase_sum_equals_eq11_form() {
    // With the stock radio (listen power == RX power) and no refinements,
    // the model's phase decomposition must equal
    // P_idle·T_idle + P_tx·T_Tx + P_rx·T_Rx exactly.
    let radio = RadioModel::cc2420();
    let model = ActivationModel::paper_defaults(radio.clone());
    let packet = PacketLayout::with_payload(120).unwrap();
    let mc = MonteCarloContention::figure6().with_superframes(10);
    for (loss, level, stats) in [
        (
            60.0,
            TxPowerLevel::Neg25,
            IdealContention.stats(0.42, packet),
        ),
        (85.0, TxPowerLevel::Neg1, mc.stats(0.42, packet)),
        (92.0, TxPowerLevel::Zero, mc.stats(0.7, packet)),
    ] {
        let out = model.evaluate(
            &ModelInputs {
                packet,
                beacon_order: BeaconOrder::new(6).unwrap(),
                tx_level: level,
                path_loss: Db::new(loss),
                contention: stats,
            },
            &EmpiricalCc2420Ber::paper(),
        );
        let eq11 = radio.state_power(RadioState::Idle).watts() * out.t_idle.secs()
            + radio.state_power(RadioState::Tx(level)).watts() * out.t_tx.secs()
            + radio.state_power(RadioState::Rx).watts() * out.t_rx.secs();
        let phases = out.total_energy().joules();
        assert!(
            (eq11 - phases).abs() < eq11 * 1e-9,
            "at {loss} dB: eq11 {eq11:.3e} J vs phases {phases:.3e} J"
        );
        // And the reported average power is that energy over T_ib.
        let p = phases / out.t_ib.secs();
        assert!((p - out.average_power.watts()).abs() < p * 1e-9);
    }
}

#[test]
fn per_superframe_energy_is_population_invariant_at_fixed_load() {
    // At fixed load λ, the inter-beacon period scales with the node count
    // (T_ib = N·T_packet/λ), so per-node *power* falls with N — but the
    // energy a node spends per superframe (one beacon + one transaction)
    // must be nearly population-invariant, because contention statistics
    // depend on λ, not on N directly.
    let run = |nodes: usize, seed: u64| {
        let mut channel = ChannelSimConfig::figure6(50, 0.3, seed);
        channel.nodes = nodes;
        channel.superframes = 8;
        let t_ib = channel.beacon_interval();
        let sim = NetworkSimulator::new(NetworkConfig {
            channel,
            radio: RadioModel::cc2420(),
            path_losses: vec![Db::new(70.0); nodes].into(),
            tx_policy: TxPowerPolicy::Fixed(TxPowerLevel::Neg5),
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
            corrupt_probs: None,
        });
        let report = sim.run(&EmpiricalCc2420Ber::paper());
        report.mean_node_power.watts() * t_ib.secs()
    };
    let small = run(25, 9);
    let large = run(50, 9);
    let ratio = large / small;
    assert!(
        (0.8..1.25).contains(&ratio),
        "per-superframe energy should be population-invariant at fixed load, ratio {ratio:.3}"
    );
}
